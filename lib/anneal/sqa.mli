(** Simulated quantum annealing (path-integral Monte Carlo).

    The closest classical simulation of a transverse-field quantum
    annealer — the "real quantum computer" the paper defers to future
    work. The quantum system at inverse temperature β with transverse
    field Γ is mapped by the Suzuki-Trotter decomposition onto [trotter]
    coupled replicas ("slices") of the classical Ising problem:

    - classical couplings act within each slice, scaled by [1/P];
    - spins of the same variable in adjacent slices (periodic) are tied
      by a ferromagnetic coupling
      [J⊥(Γ) = -(1 / (2 β_slice)) · ln tanh(β_slice Γ)], which weakens as
      Γ grows — large Γ lets world lines break up (quantum fluctuation),
      Γ → 0 forces all slices to agree (classical limit).

    The anneal lowers Γ geometrically from [gamma_hot] to [gamma_cold] at
    fixed β. Each sweep applies Metropolis to every (slice, spin) pair,
    then one world-line move per variable (flipping a variable across all
    slices), which decorrelates much faster on the strongly tied late
    phase. The best slice by classical energy is the read's result.

    When [trotter] ≤ {!Qsmt_qubo.Multispin.max_lanes} (always, at the
    default 8) a read runs on the bit-parallel multi-spin kernel: the
    slices are the lanes of one packed state, local moves advance every
    slice per site in ring-colored passes (adjacent slices are coupled,
    so they never decide simultaneously), and the transverse-field term
    comes from word rotations. Wider Trotter numbers fall back to the
    scalar per-slice states. The two paths draw randomness differently,
    so results are not sample-identical across the boundary. *)

type params = {
  reads : int;  (** independent runs (default 16) *)
  sweeps : int;  (** Γ steps per read (default 500) *)
  trotter : int;  (** Trotter slices P ≥ 2 (default 8) *)
  beta : float option;
      (** fixed inverse temperature; [None] (default) uses the cold end
          of {!Schedule.default_beta_range} *)
  gamma_hot : float option;
      (** initial transverse field; [None] (default) uses
          [3 × max |coefficient|] (min 1.0) *)
  gamma_cold : float;  (** final transverse field (default 1e-2) *)
  seed : int;
  domains : int;  (** parallel domains for reads (default 1) *)
}

val default : params

val sample :
  ?params:params ->
  ?init:Qsmt_util.Bitvec.t ->
  ?stop:(unit -> bool) ->
  ?on_read:(Qsmt_util.Bitvec.t -> unit) ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  Qsmt_qubo.Qubo.t ->
  Sampleset.t
(** One entry per read: the lowest-classical-energy slice of that read's
    final configuration. [init] warm-starts read 0: every Trotter slice
    begins at the given assignment (a fully coherent world line, the
    reverse-anneal starting condition); see {!Sa.sample} for the
    contract. [stop] and [on_read] follow the cooperative
    cancellation contract documented at {!Sa.sample}. [telemetry] streams
    strided [sqa.sweep] events (read, sweep, Γ, best slice energy,
    replica spread = worst − best world line) plus [sqa.reads] /
    [sqa.read_energy]; the spread is the replica-coherence signal that
    distinguishes the quantum-fluctuation phase from the frozen tail. *)
