(** Parallel tempering (replica exchange) sampler.

    Runs [replicas] Metropolis chains at a geometric ladder of fixed
    temperatures and periodically proposes swapping neighboring replicas'
    configurations with the detailed-balance probability
    [min(1, exp((β_a − β_b)(E_a − E_b)))]. Hot replicas roam the
    landscape, cold replicas refine — on frustrated problems (embedded
    chains, one-hot penalties) this mixes far better than a single cooled
    chain, which is why it's the standard classical competitor in the
    annealing literature and belongs in the ablation suite.

    When [replicas] ≤ {!Qsmt_qubo.Multispin.max_lanes} (always, at the
    default 8) a read runs on the bit-parallel multi-spin kernel: the
    ladder is the lane dimension of one packed state (rungs don't
    interact through spins, so one word-wide accept decision per site is
    exact), and an accepted exchange just permutes the lane↔rung
    assignment — O(1) bookkeeping instead of a configuration swap. Wider
    ladders fall back to the scalar per-replica states; the two paths
    draw randomness differently, so results are not sample-identical
    across the boundary. *)

type params = {
  reads : int;  (** independent tempering runs (default 8) *)
  sweeps : int;  (** Metropolis sweeps per run (default 500) *)
  replicas : int;
      (** temperature rungs ≥ 1 (default 8); a single rung degenerates to
          plain Metropolis at [beta_cold] with no exchanges *)
  beta_range : (float * float) option;
      (** (hot, cold); [None] (default) derives from the problem via
          {!Schedule.default_beta_range} *)
  exchange_interval : int;  (** sweeps between swap phases (default 10) *)
  seed : int;
  domains : int;  (** parallel domains across reads (default 1) *)
}

val default : params

val sample :
  ?params:params ->
  ?init:Qsmt_util.Bitvec.t ->
  ?stop:(unit -> bool) ->
  ?on_read:(Qsmt_util.Bitvec.t -> unit) ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  Qsmt_qubo.Qubo.t ->
  Sampleset.t
(** One entry per read: the coldest replica's best-ever configuration.
    [init] warm-starts every replica of read 0 from the given assignment;
    see {!Sa.sample} for the contract. [stop] and [on_read] follow the
    cooperative cancellation contract documented at {!Sa.sample}. [telemetry] streams strided [pt.sweep]
    events (read, sweep, best energy, accepted swaps that sweep) plus a
    [pt.replica_swaps] counter and [pt.reads] / [pt.read_energy]. *)
