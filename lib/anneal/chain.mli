(** Chain coupling and chain-break resolution.

    Once an {!Embedding} is fixed, the logical QUBO must be rewritten
    onto physical qubits: linear terms spread across the chain, couplers
    placed on the available inter-chain edges, and a ferromagnetic
    penalty [C·(x_a − x_b)²] added along every chain edge so the chain
    acts as one variable. Samples coming back may still have *broken*
    chains (qubits of one chain disagreeing); those are repaired by
    majority vote before decoding. *)

val default_strength : Qsmt_qubo.Qubo.t -> float
(** [2 × max |coefficient|], at least [1.] — a simple, robust version of
    D-Wave's uniform-torque-compensation default. *)

val max_local_field : Qsmt_qubo.Qubo.t -> float
(** [max_i (|Q_ii| + Σ_j |Q_ij|)] over the logical problem — the
    worst-case energy a single logical variable's terms can exert on one
    of its chain qubits. A chain strength at or above this bound
    guarantees no ground state of the embedded problem breaks a chain;
    below it, breaks are merely unlikely rather than impossible. The
    static linter compares configured strengths against both this bound
    and {!default_strength}. *)

val embed_qubo :
  Qsmt_qubo.Qubo.t ->
  embedding:Embedding.t ->
  hardware:Qsmt_qubo.Qgraph.t ->
  chain_strength:float ->
  Qsmt_qubo.Qubo.t
(** Physical QUBO over [Qgraph.num_vertices hardware] variables:
    - [Q_ii] of logical [i] is split equally over the chain of [i];
    - [Q_ij] is split equally over all hardware edges between the two
      chains;
    - every hardware edge inside a chain gets the penalty
      [C x_a + C x_b − 2C x_a x_b] (zero when the chain agrees, [C] per
      disagreeing edge).

    The embedded problem's ground states project (by {!unembed}) onto the
    logical ground states when [chain_strength] is large enough.
    @raise Invalid_argument if a logical coupler has no hardware edge
    (i.e. the embedding is invalid for this problem). *)

val unembed :
  ?rng:Qsmt_util.Prng.t ->
  embedding:Embedding.t ->
  Qsmt_util.Bitvec.t ->
  Qsmt_util.Bitvec.t
(** Majority vote per chain; the result has one bit per logical variable.
    An exactly-split even-length chain is a tie: with [rng] it is broken
    by a fair coin flip (as D-Wave's [majority_vote] does — the seed
    revision's deterministic tie-to-1 skewed decoded strings), without
    [rng] it deterministically resolves to 1 for legacy callers. *)

val chain_break_fraction : embedding:Embedding.t -> Qsmt_util.Bitvec.t -> float
(** Fraction of chains whose qubits do not all agree. [0.] when there
    are no chains. *)
