module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Parallel = Qsmt_util.Parallel
module Telemetry = Qsmt_util.Telemetry
module Qubo = Qsmt_qubo.Qubo
module Ising = Qsmt_qubo.Ising
module Fields = Qsmt_qubo.Fields

type params = { restarts : int; seed : int; domains : int }

let default = { restarts = 32; seed = 0; domains = 1 }

(* Steepest descent over cached deltas: each round scans n O(1) deltas and
   pays one O(degree) update for the accepted flip. *)
let descend_fields fields =
  let n = Fields.num_spins fields in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_i = ref (-1) and best_delta = ref (-1e-12) in
    for i = 0 to n - 1 do
      let d = Fields.delta fields i in
      if d < !best_delta then begin
        best_delta := d;
        best_i := i
      end
    done;
    if !best_i >= 0 then begin
      Fields.flip fields !best_i;
      improved := true
    end
  done

let descend q x =
  let fields = Fields.create (Ising.of_qubo q) (Bitvec.copy x) in
  descend_fields fields;
  Fields.spins fields

let sample ?(params = default) ?init ?stop ?on_read ?(telemetry = Telemetry.null) q =
  if params.restarts < 1 then invalid_arg "Greedy.sample: restarts < 1";
  let n = Qubo.num_vars q in
  (match init with
  | Some b when Bitvec.length b <> n ->
    invalid_arg
      (Printf.sprintf "Greedy.sample: init has %d bits, problem has %d vars" (Bitvec.length b) n)
  | _ -> ());
  if n = 0 then Sampleset.of_bits q [ Bitvec.create 0 ]
  else begin
    let ising = Ising.of_qubo q in
    let stopped () = match stop with Some f -> f () | None -> false in
    let tracked = Telemetry.enabled telemetry in
    let run r =
      if stopped () then None
      else begin
        let rng = Prng.stream ~seed:params.seed r in
        let start =
          match init with
          | Some b when r = 0 -> Bitvec.copy b
          | _ -> Bitvec.random rng n
        in
        let fields = Fields.create ising start in
        descend_fields fields;
        let bits = Fields.spins fields in
        if tracked then begin
          Telemetry.count telemetry "greedy.reads" 1;
          Telemetry.observe telemetry "greedy.read_energy" (Fields.energy fields)
        end;
        (match on_read with Some f -> f bits | None -> ());
        Some (bits, Fields.energy fields)
      end
    in
    let samples = Parallel.init_array ~telemetry ~domains:params.domains params.restarts run in
    Sampleset.of_tracked q (List.filter_map Fun.id (Array.to_list samples))
  end
