module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Parallel = Qsmt_util.Parallel
module Telemetry = Qsmt_util.Telemetry
module Qubo = Qsmt_qubo.Qubo
module Ising = Qsmt_qubo.Ising
module Fields = Qsmt_qubo.Fields
module Multispin = Qsmt_qubo.Multispin

type params = {
  reads : int;
  sweeps : int;
  trotter : int;
  beta : float option;
  gamma_hot : float option;
  gamma_cold : float;
  seed : int;
  domains : int;
}

let default =
  {
    reads = 16;
    sweeps = 500;
    trotter = 8;
    beta = None;
    gamma_hot = None;
    gamma_cold = 1e-2;
    seed = 0;
    domains = 1;
  }

let spin_sign slice i = if Bitvec.get slice i then 1. else -1.

(* Inter-slice coupling strength at transverse field gamma. beta_slice is
   beta/P. The coupling enters the energy as -j_perp * s_{i,k} s_{i,k+1},
   so positive j_perp favors aligned world lines. *)
let j_perp ~beta_slice gamma =
  let t = Float.tanh (beta_slice *. gamma) in
  (* tanh is within (0,1) for positive arguments, so log is negative and
     j_perp positive; clamp guards against underflow at tiny gamma. *)
  let t = Float.max t 1e-300 in
  -0.5 /. beta_slice *. Float.log t

(* Packed path: the P Trotter slices of one read become the P lanes of a
   {!Multispin} state, so one CSR pass per site serves every slice. The
   inter-slice ring couples lane l to lanes l±1 (mod P), so flipping all
   lanes of a site at once is not a valid Metropolis move — adjacent
   slices' deltas depend on each other's current spins. We 2-color the
   ring and run the local moves in colored passes (even lanes, then odd);
   an odd P leaves the wrap lane P-1 adjacent to lane 0 of the same
   color, so it gets a third pass of its own. Within a pass no two
   updated lanes are coupled, so the word-wide decision is exact.

   The transverse-field delta needs each lane's agreement with its ring
   neighbors: rotating the packed word by one lane position (with
   wraparound inside the low P bits) aligns every lane's neighbor under
   its own bit, and XOR marks the disagreeing lanes — two rotations and
   two XORs replace 2P bit reads. *)
let run_read_packed ~ising ~params ~beta ~gamma_hot ?init ?stop ?on_sweep rng =
  let stopped () = match stop with Some f -> f () | None -> false in
  let n = Ising.num_spins ising in
  let p = params.trotter in
  let pf = float_of_int p in
  let beta_slice = beta /. pf in
  let start () =
    match init with Some b -> Bitvec.copy b | None -> Bitvec.random rng n
  in
  let ms = Multispin.create ising (Array.init p (fun _ -> start ())) in
  let dr = Multispin.draws rng in
  let all = Multispin.lane_mask ms in
  let even = ref 0L and odd = ref 0L in
  for l = 0 to p - 1 do
    let bit = Int64.shift_left 1L l in
    if l land 1 = 0 then even := Int64.logor !even bit else odd := Int64.logor !odd bit
  done;
  let passes =
    if p land 1 = 0 then [ !even; !odd ]
    else begin
      let wrap = Int64.shift_left 1L (p - 1) in
      [ Int64.logand !even (Int64.lognot wrap); !odd; wrap ]
    end
  in
  let betas = Array.make p beta in
  let deltas = Array.make p 0. in
  let ratio =
    if params.sweeps <= 1 then 1.
    else (params.gamma_cold /. gamma_hot) ** (1. /. float_of_int (params.sweeps - 1))
  in
  let gamma = ref gamma_hot in
  let sweep = ref 0 in
  while !sweep < params.sweeps && not (stopped ()) do
    let jp = j_perp ~beta_slice !gamma in
    let jp2 = 2. *. jp in
    (* Local moves: per site, each colored pass re-reads the word (earlier
       passes' flips must be visible) and decides its lanes at once. *)
    for i = 0 to n - 1 do
      List.iter
        (fun only ->
          let w = Multispin.word ms i in
          let up =
            Int64.logand
              (Int64.logor (Int64.shift_right_logical w 1) (Int64.shift_left w (p - 1)))
              all
          and down =
            Int64.logand
              (Int64.logor (Int64.shift_left w 1) (Int64.shift_right_logical w (p - 1)))
              all
          in
          let dis_up = Int64.logxor w up and dis_down = Int64.logxor w down in
          Multispin.deltas ms i deltas;
          for l = 0 to p - 1 do
            let au =
              if Int64.logand (Int64.shift_right_logical dis_up l) 1L = 0L then 1. else -1.
            and ad =
              if Int64.logand (Int64.shift_right_logical dis_down l) 1L = 0L then 1. else -1.
            in
            deltas.(l) <- (deltas.(l) /. pf) +. (jp2 *. (au +. ad))
          done;
          let acc = Multispin.accept_mask ms ~draws:dr ~only ~betas deltas in
          if acc <> 0L then Multispin.flip ms i acc)
        passes
    done;
    (* World-line moves: inter-slice terms cancel, the cost is the mean
       classical delta, and the accepted flip is one word-wide XOR. *)
    for i = 0 to n - 1 do
      Multispin.deltas ms i deltas;
      let d = ref 0. in
      for l = 0 to p - 1 do
        d := !d +. (deltas.(l) /. pf)
      done;
      if !d <= 0. || Prng.float rng < Float.exp (-.beta *. !d) then Multispin.flip ms i all
    done;
    (match on_sweep with
    | None -> ()
    | Some f ->
      let lo = ref infinity and hi = ref neg_infinity in
      for l = 0 to p - 1 do
        let e = Multispin.energy ms l in
        if e < !lo then lo := e;
        if e > !hi then hi := e
      done;
      f ~sweep:!sweep ~gamma:!gamma ~best:!lo ~spread:(!hi -. !lo));
    gamma := !gamma *. ratio;
    incr sweep
  done;
  let bl = Multispin.best_lane ms in
  (Multispin.lane_spins ms bl, Multispin.energy ms bl)

let run_read ~ising ~params ~beta ~gamma_hot ?init ?stop ?on_sweep rng =
  let stopped () = match stop with Some f -> f () | None -> false in
  let n = Ising.num_spins ising in
  let p = params.trotter in
  let pf = float_of_int p in
  let beta_slice = beta /. pf in
  (* One incremental Fields state per Trotter slice: local moves read an
     O(1) cached delta, and the world-line move sums P cached deltas
     instead of rescanning P adjacency rows per variable. A warm start
     seeds every slice with the same assignment — a fully coherent world
     line, which is exactly the reverse-anneal starting condition. *)
  let start () =
    match init with Some b -> Bitvec.copy b | None -> Bitvec.random rng n
  in
  let slices = Array.init p (fun _ -> Fields.create ising (start ())) in
  (* Audited for the Pt single-step edge case: sweeps = 1 is guarded
     before the [sweeps - 1] divisor, so the ratio is never inf/NaN —
     gamma simply stays at gamma_hot for the only sweep. *)
  let ratio =
    if params.sweeps <= 1 then 1.
    else (params.gamma_cold /. gamma_hot) ** (1. /. float_of_int (params.sweeps - 1))
  in
  let gamma = ref gamma_hot in
  let sweep = ref 0 in
  while !sweep < params.sweeps && not (stopped ()) do
    let jp = j_perp ~beta_slice !gamma in
    (* Local moves: every (slice, spin). *)
    for k = 0 to p - 1 do
      let up = Fields.spins slices.((k + 1) mod p)
      and down = Fields.spins slices.((k + p - 1) mod p) in
      let slice = slices.(k) in
      let bits = Fields.spins slice in
      for i = 0 to n - 1 do
        let d_classical = Fields.delta slice i /. pf in
        let s = spin_sign bits i in
        let d_perp = 2. *. jp *. s *. (spin_sign up i +. spin_sign down i) in
        let delta = d_classical +. d_perp in
        if delta <= 0. || Prng.float rng < Float.exp (-.beta *. delta) then Fields.flip slice i
      done
    done;
    (* World-line moves: flip variable i in every slice; inter-slice terms
       cancel, so the delta is the mean classical delta. *)
    for i = 0 to n - 1 do
      let delta = ref 0. in
      Array.iter (fun slice -> delta := !delta +. (Fields.delta slice i /. pf)) slices;
      if !delta <= 0. || Prng.float rng < Float.exp (-.beta *. !delta) then
        Array.iter (fun slice -> Fields.flip slice i) slices
    done;
    (match on_sweep with
    | None -> ()
    | Some f ->
      (* Tracked classical energies of every slice: the spread between
         the best and worst world line is the replica-coherence signal
         SQA diagnostics watch. *)
      let lo = ref infinity and hi = ref neg_infinity in
      Array.iter
        (fun slice ->
          let e = Fields.energy slice in
          if e < !lo then lo := e;
          if e > !hi then hi := e)
        slices;
      f ~sweep:!sweep ~gamma:!gamma ~best:!lo ~spread:(!hi -. !lo));
    gamma := !gamma *. ratio;
    incr sweep
  done;
  (* Read out the best slice by (tracked) classical energy. *)
  let best = ref slices.(0) and best_e = ref (Fields.energy slices.(0)) in
  Array.iter
    (fun slice ->
      let e = Fields.energy slice in
      if e < !best_e then begin
        best_e := e;
        best := slice
      end)
    slices;
  (Fields.spins !best, !best_e)

let sample ?(params = default) ?init ?stop ?on_read ?(telemetry = Telemetry.null) q =
  if params.reads < 1 then invalid_arg "Sqa.sample: reads < 1";
  if params.sweeps < 1 then invalid_arg "Sqa.sample: sweeps < 1";
  if params.trotter < 2 then invalid_arg "Sqa.sample: trotter < 2";
  if params.gamma_cold <= 0. then invalid_arg "Sqa.sample: gamma_cold <= 0";
  let n = Qubo.num_vars q in
  (match init with
  | Some b when Bitvec.length b <> n ->
    invalid_arg
      (Printf.sprintf "Sqa.sample: init has %d bits, problem has %d vars" (Bitvec.length b) n)
  | _ -> ());
  if n = 0 then Sampleset.of_bits q [ Bitvec.create 0 ]
  else begin
    let ising = Ising.of_qubo q in
    let beta =
      match params.beta with
      | Some b ->
        if b <= 0. then invalid_arg "Sqa.sample: beta <= 0";
        b
      | None -> snd (Schedule.default_beta_range ising)
    in
    let gamma_hot =
      match params.gamma_hot with
      | Some g ->
        if g < params.gamma_cold then invalid_arg "Sqa.sample: gamma_hot < gamma_cold";
        g
      | None -> Float.max 1. (3. *. Ising.max_abs_field ising)
    in
    let stopped () = match stop with Some f -> f () | None -> false in
    let tracked = Telemetry.enabled telemetry in
    let stride = Sa.sweep_stride params.sweeps in
    let run r =
      if stopped () then None
      else begin
        let rng = Prng.stream ~seed:params.seed r in
        let on_sweep =
          if not tracked then None
          else
            Some
              (fun ~sweep ~gamma ~best ~spread ->
                if sweep mod stride = 0 || sweep = params.sweeps - 1 then
                  Telemetry.emit telemetry "sqa.sweep"
                    [
                      ("read", Telemetry.Int r);
                      ("sweep", Telemetry.Int sweep);
                      ("gamma", Telemetry.Float gamma);
                      ("energy", Telemetry.Float best);
                      ("replica_spread", Telemetry.Float spread);
                    ])
        in
        let init = if r = 0 then init else None in
        (* Slices fit in one packed word up to 64; wider Trotter numbers
           keep the scalar per-slice states. *)
        let run_read =
          if params.trotter <= Multispin.max_lanes then run_read_packed else run_read
        in
        let ((bits, e) as sample) =
          run_read ~ising ~params ~beta ~gamma_hot ?init ?stop ?on_sweep rng
        in
        if tracked then begin
          Telemetry.count telemetry "sqa.reads" 1;
          Telemetry.count telemetry "sqa.sweeps" params.sweeps;
          Telemetry.observe telemetry "sqa.read_energy" e
        end;
        (match on_read with Some f -> f bits | None -> ());
        Some sample
      end
    in
    let t0 = if tracked then Qsmt_util.Mclock.now () else 0. in
    let samples = Parallel.init_array ~telemetry ~domains:params.domains params.reads run in
    if tracked then begin
      let done_reads =
        Array.fold_left (fun a s -> match s with Some _ -> a + 1 | None -> a) 0 samples
      in
      let sweeps_done = float_of_int (done_reads * params.sweeps) in
      (* one SQA sweep proposes a flip per spin per Trotter slice *)
      Sa.throughput_gauges telemetry ~name:"sqa" ~sweeps_done
        ~flips_done:(sweeps_done *. float_of_int (n * params.trotter))
        ~dt:(Qsmt_util.Mclock.now () -. t0)
    end;
    Sampleset.of_tracked q (List.filter_map Fun.id (Array.to_list samples))
  end
