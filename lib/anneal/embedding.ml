module Prng = Qsmt_util.Prng
module Qgraph = Qsmt_qubo.Qgraph

type t = { chains : int list array }

let chain t v = t.chains.(v)
let num_problem_vars t = Array.length t.chains
let chains t = Array.map (fun c -> c) t.chains

let max_chain_length t = Array.fold_left (fun acc c -> max acc (List.length c)) 0 t.chains
let total_qubits_used t = Array.fold_left (fun acc c -> acc + List.length c) 0 t.chains

let of_chains chains = { chains = Array.map (List.sort_uniq compare) chains }
let identity n = { chains = Array.init n (fun i -> [ i ]) }

let validate ~problem ~hardware t =
  let n = Qgraph.num_vertices problem in
  if Array.length t.chains <> n then
    Error
      (Printf.sprintf "embedding covers %d vertices, problem has %d" (Array.length t.chains) n)
  else begin
    let hw_n = Qgraph.num_vertices hardware in
    let owner = Array.make hw_n (-1) in
    let exception Invalid of string in
    try
      (* 1: chains nonempty, in range, disjoint. *)
      Array.iteri
        (fun v c ->
          if c = [] then raise (Invalid (Printf.sprintf "vertex %d has an empty chain" v));
          List.iter
            (fun q ->
              if q < 0 || q >= hw_n then
                raise (Invalid (Printf.sprintf "chain of %d uses qubit %d outside hardware" v q));
              if owner.(q) >= 0 then
                raise
                  (Invalid (Printf.sprintf "qubit %d used by both %d and %d" q owner.(q) v));
              owner.(q) <- v)
            c)
        t.chains;
      (* 2: each chain connected in hardware. *)
      Array.iteri
        (fun v c ->
          match c with
          | [] -> ()
          | first :: _ ->
            let in_chain = Hashtbl.create 8 in
            List.iter (fun q -> Hashtbl.replace in_chain q ()) c;
            let seen = Hashtbl.create 8 in
            let queue = Queue.create () in
            Queue.add first queue;
            Hashtbl.replace seen first ();
            while not (Queue.is_empty queue) do
              let q = Queue.pop queue in
              List.iter
                (fun w ->
                  if Hashtbl.mem in_chain w && not (Hashtbl.mem seen w) then begin
                    Hashtbl.replace seen w ();
                    Queue.add w queue
                  end)
                (Qgraph.neighbors hardware q)
            done;
            if Hashtbl.length seen <> List.length c then
              raise (Invalid (Printf.sprintf "chain of vertex %d is disconnected" v)))
        t.chains;
      (* 3: every problem edge realized by some hardware edge. *)
      Qgraph.iter_edges problem (fun u v ->
          let connected =
            List.exists
              (fun qu -> List.exists (fun qv -> Qgraph.mem_edge hardware qu qv) t.chains.(v))
              t.chains.(u)
          in
          if not connected then
            raise (Invalid (Printf.sprintf "problem edge (%d,%d) has no hardware edge" u v)));
      Ok ()
    with Invalid msg -> Error msg
  end

(* BFS from every qubit of [sources] through free qubits only. Returns
   (dist, parent); chain qubits have dist 0, free qubits their hop count,
   blocked/unreached have max_int. *)
let bfs_from_chain hardware ~owner ~sources =
  let hw_n = Qgraph.num_vertices hardware in
  let dist = Array.make hw_n max_int in
  let parent = Array.make hw_n (-1) in
  let queue = Queue.create () in
  List.iter
    (fun q ->
      dist.(q) <- 0;
      Queue.add q queue)
    sources;
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    List.iter
      (fun w ->
        if dist.(w) = max_int && owner.(w) = -1 then begin
          dist.(w) <- dist.(q) + 1;
          parent.(w) <- q;
          Queue.add w queue
        end)
      (Qgraph.neighbors hardware q)
  done;
  (dist, parent)

let attempt ~rng ~problem ~hardware =
  let n = Qgraph.num_vertices problem in
  let hw_n = Qgraph.num_vertices hardware in
  let owner = Array.make hw_n (-1) in
  let chains = Array.make n [] in
  let placed = Array.make n false in
  (* Decreasing degree with random tie-break: high-degree vertices are the
     hardest to route, place them while the hardware is empty. *)
  let order = Array.init n (fun v -> v) in
  Prng.shuffle rng order;
  Array.sort (fun a b -> compare (Qgraph.degree problem b) (Qgraph.degree problem a)) order;
  let claim v q =
    owner.(q) <- v;
    chains.(v) <- q :: chains.(v)
  in
  let free_qubits () =
    let acc = ref [] in
    for q = hw_n - 1 downto 0 do
      if owner.(q) = -1 then acc := q :: !acc
    done;
    !acc
  in
  let place v =
    placed.(v) <- true;
    let neighbors = List.filter (fun u -> u <> v && placed.(u)) (Qgraph.neighbors problem v) in
    match neighbors with
    | [] -> begin
      (* Seed vertex: a random free qubit of maximal degree keeps the
         richest routing options open. *)
      match free_qubits () with
      | [] -> false
      | free ->
        let best_deg = List.fold_left (fun acc q -> max acc (Qgraph.degree hardware q)) 0 free in
        let candidates = Array.of_list (List.filter (fun q -> Qgraph.degree hardware q = best_deg) free) in
        claim v (Prng.choose rng candidates);
        true
    end
    | _ ->
      let searches =
        List.map (fun u -> bfs_from_chain hardware ~owner ~sources:chains.(u)) neighbors
      in
      (* Root candidate: free qubit reachable from every neighbor chain,
         minimizing total distance. *)
      let best_total = ref max_int and candidates = ref [] in
      for q = 0 to hw_n - 1 do
        if owner.(q) = -1 then begin
          let total =
            List.fold_left
              (fun acc (dist, _) ->
                if acc = max_int || dist.(q) = max_int then max_int else acc + dist.(q))
              0 searches
          in
          if total < !best_total then begin
            best_total := total;
            candidates := [ q ]
          end
          else if total = !best_total && total < max_int then candidates := q :: !candidates
        end
      done;
      if !best_total = max_int then false
      else begin
        let root = Prng.choose rng (Array.of_list !candidates) in
        claim v root;
        (* Claim each connecting path, walking parents back to dist 0
           (which is inside the neighbor's chain and stays there). *)
        List.iter
          (fun (dist, parent) ->
            let cur = ref root in
            while dist.(!cur) > 0 do
              if owner.(!cur) = -1 then claim v !cur;
              cur := parent.(!cur)
            done)
          searches;
        true
      end
  in
  let ok = Array.for_all (fun v -> place v) order in
  if ok then begin
    let t = { chains = Array.map (List.sort_uniq compare) chains } in
    match validate ~problem ~hardware t with Ok () -> Some t | Error _ -> None
  end
  else None

let find_detailed ?(seed = 0) ?(tries = 16) ~problem ~hardware () =
  if Qgraph.num_vertices problem = 0 then Some ({ chains = [||] }, 0)
  else begin
    let rec loop k =
      if k >= tries then None
      else begin
        (* Per-try streams come from Prng.stream, which mixes the full
           64-bit golden-ratio constant; the seed revision hand-rolled a
           truncated 0x9E3779B97F4A7C here (same defect class PR 1 fixed
           in Prng), correlating adjacent tries. *)
        let rng = Prng.stream ~seed k in
        match attempt ~rng ~problem ~hardware with
        | Some t -> Some (t, k + 1)
        | None -> loop (k + 1)
      end
    in
    loop 0
  end

let find ?seed ?tries ~problem ~hardware () =
  Option.map fst (find_detailed ?seed ?tries ~problem ~hardware ())

let trim ~problem ~hardware t =
  let chains = Array.map (fun c -> c) t.chains in
  let n = Array.length chains in
  (* can qubit [q] leave chain [v]? the rest must stay connected and
     still touch every neighbor chain *)
  let removable v q =
    let rest = List.filter (fun w -> w <> q) chains.(v) in
    match rest with
    | [] -> false
    | first :: _ ->
      (* connectivity of the remainder *)
      let in_rest = Hashtbl.create 8 in
      List.iter (fun w -> Hashtbl.replace in_rest w ()) rest;
      let seen = Hashtbl.create 8 in
      let queue = Queue.create () in
      Hashtbl.replace seen first ();
      Queue.add first queue;
      while not (Queue.is_empty queue) do
        let w = Queue.pop queue in
        List.iter
          (fun x ->
            if Hashtbl.mem in_rest x && not (Hashtbl.mem seen x) then begin
              Hashtbl.replace seen x ();
              Queue.add x queue
            end)
          (Qgraph.neighbors hardware w)
      done;
      Hashtbl.length seen = List.length rest
      && List.for_all
           (fun u ->
             List.exists
               (fun a -> List.exists (fun b -> Qgraph.mem_edge hardware a b) chains.(u))
               rest)
           (Qgraph.neighbors problem v)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to n - 1 do
      (* try dropping leaf-most qubits first: scan the current chain *)
      List.iter
        (fun q ->
          if List.mem q chains.(v) && List.length chains.(v) > 1 && removable v q then begin
            chains.(v) <- List.filter (fun w -> w <> q) chains.(v);
            changed := true
          end)
        chains.(v)
    done
  done;
  { chains = Array.map (List.sort_uniq compare) chains }

let pp ppf t =
  Format.fprintf ppf "embedding: %d vars, %d qubits, max chain %d" (num_problem_vars t)
    (total_qubits_used t) (max_chain_length t)
