module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Parallel = Qsmt_util.Parallel
module Telemetry = Qsmt_util.Telemetry
module Qubo = Qsmt_qubo.Qubo
module Ising = Qsmt_qubo.Ising
module Fields = Qsmt_qubo.Fields

type params = {
  restarts : int;
  iterations : int;
  tenure : int option;
  seed : int;
  domains : int;
}

let default = { restarts = 8; iterations = 500; tenure = None; seed = 0; domains = 1 }

let search ising ~rng ~iterations ~tenure ?init ?stop ?on_iter () =
  let n = Ising.num_spins ising in
  (* Incremental state: the best-admissible-move scan below reads n cached
     deltas in O(n) instead of rescanning n adjacency rows. *)
  let start = match init with Some b -> Bitvec.copy b | None -> Bitvec.random rng n in
  let fields = Fields.create ising start in
  let best = ref (Bitvec.copy (Fields.spins fields)) in
  let best_energy = ref (Fields.energy fields) in
  let stopped () = match stop with Some f -> f () | None -> false in
  (* tabu_until.(i): first iteration at which flipping i is allowed again *)
  let tabu_until = Array.make n 0 in
  (* Poll [stop] every 64 iterations: each iteration is already O(n), the
     check just has to stay off the inner loop. *)
  let cursor = ref 0 in
  while !cursor < iterations && ((!cursor land 63) <> 0 || not (stopped ())) do
    let it = !cursor in
    (* Best admissible move: most negative delta among non-tabu flips,
       or any tabu flip that would beat the incumbent (aspiration). *)
    let chosen = ref (-1) and chosen_delta = ref infinity in
    let chosen_tabu = ref false in
    for i = 0 to n - 1 do
      let delta = Fields.delta fields i in
      let is_tabu = tabu_until.(i) > it in
      let admissible =
        (not is_tabu) || Fields.energy fields +. delta < !best_energy -. 1e-12
      in
      if admissible && delta < !chosen_delta then begin
        chosen := i;
        chosen_delta := delta;
        chosen_tabu := is_tabu
      end
    done;
    (* All moves tabu and none aspirates: fall back to a random kick so
       the search cannot stall. *)
    let kicked = !chosen < 0 in
    let i = if kicked then Prng.int rng n else !chosen in
    Fields.flip fields i;
    tabu_until.(i) <- it + 1 + tenure;
    if Fields.energy fields < !best_energy then begin
      best_energy := Fields.energy fields;
      best := Bitvec.copy (Fields.spins fields)
    end;
    (match on_iter with
    | None -> ()
    | Some f ->
      f ~iter:it ~energy:(Fields.energy fields) ~best:!best_energy ~aspirated:!chosen_tabu
        ~kicked);
    incr cursor
  done;
  (!best, !best_energy)

let sample ?(params = default) ?init ?stop ?on_read ?(telemetry = Telemetry.null) q =
  if params.restarts < 1 then invalid_arg "Tabu.sample: restarts < 1";
  if params.iterations < 1 then invalid_arg "Tabu.sample: iterations < 1";
  let n = Qubo.num_vars q in
  (match init with
  | Some b when Bitvec.length b <> n ->
    invalid_arg
      (Printf.sprintf "Tabu.sample: init has %d bits, problem has %d vars" (Bitvec.length b) n)
  | _ -> ());
  if n = 0 then Sampleset.of_bits q [ Bitvec.create 0 ]
  else begin
    let tenure =
      match params.tenure with
      | Some t ->
        if t < 0 then invalid_arg "Tabu.sample: negative tenure";
        t
      | None -> min ((n / 4) + 1) 20
    in
    let ising = Ising.of_qubo q in
    let stopped () = match stop with Some f -> f () | None -> false in
    let tracked = Telemetry.enabled telemetry in
    let stride = Sa.sweep_stride params.iterations in
    let run r =
      if stopped () then None
      else begin
        let rng = Prng.stream ~seed:params.seed r in
        let on_iter =
          if not tracked then None
          else
            Some
              (fun ~iter ~energy ~best ~aspirated ~kicked ->
                if aspirated then Telemetry.count telemetry "tabu.aspirations" 1;
                if kicked then Telemetry.count telemetry "tabu.kicks" 1;
                if iter mod stride = 0 || iter = params.iterations - 1 then
                  Telemetry.emit telemetry "tabu.iter"
                    [
                      ("restart", Telemetry.Int r);
                      ("iter", Telemetry.Int iter);
                      ("energy", Telemetry.Float energy);
                      ("best", Telemetry.Float best);
                    ])
        in
        let init = if r = 0 then init else None in
        let ((bits, e) as sample) =
          search ising ~rng ~iterations:params.iterations ~tenure ?init ?stop ?on_iter ()
        in
        if tracked then begin
          Telemetry.count telemetry "tabu.reads" 1;
          Telemetry.count telemetry "tabu.sweeps" params.iterations;
          Telemetry.observe telemetry "tabu.read_energy" e
        end;
        (match on_read with Some f -> f bits | None -> ());
        Some sample
      end
    in
    let t0 = if tracked then Qsmt_util.Mclock.now () else 0. in
    let samples = Parallel.init_array ~telemetry ~domains:params.domains params.restarts run in
    if tracked then begin
      let done_reads =
        Array.fold_left (fun a s -> match s with Some _ -> a + 1 | None -> a) 0 samples
      in
      (* a tabu iteration scans all n candidate moves and flips one, so
         an iteration is the analogue of one sweep of proposals *)
      let sweeps_done = float_of_int (done_reads * params.iterations) in
      Sa.throughput_gauges telemetry ~name:"tabu" ~sweeps_done
        ~flips_done:(sweeps_done *. float_of_int n)
        ~dt:(Qsmt_util.Mclock.now () -. t0)
    end;
    Sampleset.of_tracked q (List.filter_map Fun.id (Array.to_list samples))
  end
