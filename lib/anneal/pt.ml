module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Parallel = Qsmt_util.Parallel
module Telemetry = Qsmt_util.Telemetry
module Qubo = Qsmt_qubo.Qubo
module Ising = Qsmt_qubo.Ising
module Fields = Qsmt_qubo.Fields
module Multispin = Qsmt_qubo.Multispin

type params = {
  reads : int;
  sweeps : int;
  replicas : int;
  beta_range : (float * float) option;
  exchange_interval : int;
  seed : int;
  domains : int;
}

let default =
  {
    reads = 8;
    sweeps = 500;
    replicas = 8;
    beta_range = None;
    exchange_interval = 10;
    seed = 0;
    domains = 1;
  }

(* Packed path: the temperature ladder becomes the lane dimension of one
   {!Multispin} state — replicas at different rungs never interact
   through spins, so a word-wide accept decision per site is exact
   Metropolis for all of them at once (unlike SQA's coupled slices, no
   colored passes are needed). A replica exchange swaps which rung a lane
   answers to, not the configurations: two permutation arrays
   ([lane_of_temp] and the per-lane beta vector fed to the accept mask)
   make a swap O(1) bookkeeping, the packed analogue of the scalar
   path's Fields-handle exchange. *)
let run_read_packed ~ising ~params ~betas ?init ?stop ?on_sweep rng =
  let stopped () = match stop with Some f -> f () | None -> false in
  let n = Ising.num_spins ising in
  let k = Array.length betas in
  let start _ =
    match init with Some b -> Bitvec.copy b | None -> Bitvec.random rng n
  in
  let ms = Multispin.create ising (Array.init k start) in
  let dr = Multispin.draws rng in
  (* lane_of_temp.(t) holds the lane currently at rung t (cold = high t);
     beta_by_lane is its inverse image under betas, the accept-mask
     vector. Both start as the identity assignment. *)
  let lane_of_temp = Array.init k Fun.id in
  let beta_by_lane = Array.copy betas in
  let deltas = Array.make k 0. in
  let best = ref (Multispin.lane_spins ms lane_of_temp.(k - 1)) in
  let best_e = ref (Multispin.energy ms lane_of_temp.(k - 1)) in
  let note_best () =
    let l = Multispin.best_lane ms in
    if Multispin.energy ms l < !best_e then begin
      best_e := Multispin.energy ms l;
      best := Multispin.lane_spins ms l
    end
  in
  let sweep = ref 0 in
  while !sweep < params.sweeps && not (stopped ()) do
    incr sweep;
    let sweep = !sweep in
    for i = 0 to n - 1 do
      Multispin.deltas ms i deltas;
      let acc = Multispin.accept_mask ms ~draws:dr ~betas:beta_by_lane deltas in
      if acc <> 0L then Multispin.flip ms i acc
    done;
    note_best ();
    let swaps = ref 0 in
    if sweep mod params.exchange_interval = 0 then begin
      (* alternate even/odd neighbor pairs to keep proposals independent *)
      let parity = sweep / params.exchange_interval mod 2 in
      let r = ref parity in
      while !r + 1 < k do
        let a = !r and b = !r + 1 in
        let la = lane_of_temp.(a) and lb = lane_of_temp.(b) in
        let log_ratio =
          (betas.(a) -. betas.(b)) *. (Multispin.energy ms la -. Multispin.energy ms lb)
        in
        if log_ratio >= 0. || Prng.float rng < Float.exp log_ratio then begin
          lane_of_temp.(a) <- lb;
          lane_of_temp.(b) <- la;
          beta_by_lane.(la) <- betas.(b);
          beta_by_lane.(lb) <- betas.(a);
          incr swaps
        end;
        r := !r + 2
      done
    end;
    (match on_sweep with None -> () | Some f -> f ~sweep ~best:!best_e ~swaps:!swaps)
  done;
  (!best, !best_e)

let run_read ~ising ~params ~betas ?init ?stop ?on_sweep rng =
  let stopped () = match stop with Some f -> f () | None -> false in
  let n = Ising.num_spins ising in
  let k = Array.length betas in
  (* replica r runs at betas.(r); we swap configurations, not
     temperatures, so the array stays temperature-indexed. Each replica
     owns an incremental Fields state, so a temperature swap is a handle
     exchange — no energy or field recomputation. *)
  let start _ =
    match init with Some b -> Bitvec.copy b | None -> Bitvec.random rng n
  in
  let replicas = Array.init k (fun r -> Fields.create ising (start r)) in
  let best = ref (Bitvec.copy (Fields.spins replicas.(k - 1))) in
  let best_e = ref (Fields.energy replicas.(k - 1)) in
  let note_best r =
    if Fields.energy replicas.(r) < !best_e then begin
      best_e := Fields.energy replicas.(r);
      best := Bitvec.copy (Fields.spins replicas.(r))
    end
  in
  let sweep = ref 0 in
  while !sweep < params.sweeps && not (stopped ()) do
    incr sweep;
    let sweep = !sweep in
    for r = 0 to k - 1 do
      let beta = betas.(r) in
      let f = replicas.(r) in
      for i = 0 to n - 1 do
        let delta = Fields.delta f i in
        if delta <= 0. || Prng.float rng < Float.exp (-.beta *. delta) then Fields.flip f i
      done;
      note_best r
    done;
    let swaps = ref 0 in
    if sweep mod params.exchange_interval = 0 then begin
      (* alternate even/odd neighbor pairs to keep proposals independent *)
      let parity = sweep / params.exchange_interval mod 2 in
      let r = ref parity in
      while !r + 1 < k do
        let a = !r and b = !r + 1 in
        let log_ratio =
          (betas.(a) -. betas.(b)) *. (Fields.energy replicas.(a) -. Fields.energy replicas.(b))
        in
        if log_ratio >= 0. || Prng.float rng < Float.exp log_ratio then begin
          let tmp = replicas.(a) in
          replicas.(a) <- replicas.(b);
          replicas.(b) <- tmp;
          incr swaps
        end;
        r := !r + 2
      done
    end;
    (match on_sweep with
    | None -> ()
    | Some f -> f ~sweep ~best:!best_e ~swaps:!swaps)
  done;
  (!best, !best_e)

let sample ?(params = default) ?init ?stop ?on_read ?(telemetry = Telemetry.null) q =
  if params.reads < 1 then invalid_arg "Pt.sample: reads < 1";
  if params.sweeps < 1 then invalid_arg "Pt.sample: sweeps < 1";
  if params.replicas < 1 then invalid_arg "Pt.sample: replicas < 1";
  if params.exchange_interval < 1 then invalid_arg "Pt.sample: exchange_interval < 1";
  let n = Qubo.num_vars q in
  (match init with
  | Some b when Bitvec.length b <> n ->
    invalid_arg
      (Printf.sprintf "Pt.sample: init has %d bits, problem has %d vars" (Bitvec.length b) n)
  | _ -> ());
  if n = 0 then Sampleset.of_bits q [ Bitvec.create 0 ]
  else begin
    let ising = Ising.of_qubo q in
    let beta_hot, beta_cold =
      match params.beta_range with
      | Some (hot, cold) ->
        if hot <= 0. || cold < hot then invalid_arg "Pt.sample: bad beta_range";
        (hot, cold)
      | None -> Schedule.default_beta_range ising
    in
    let k = params.replicas in
    (* The geometric replica ladder is exactly [Schedule.make]'s geometric
       grid (bit-identical for k >= 2); reusing it also inherits the
       single-replica guard — the hand-rolled [1 / (k - 1)] here used to
       divide by zero at k = 1. One replica degenerates to plain
       Metropolis at [beta_cold] with no exchanges, which is still a
       valid sampler. *)
    let betas = Schedule.betas (Schedule.make ~beta_hot ~beta_cold ~sweeps:k ()) in
    let stopped () = match stop with Some f -> f () | None -> false in
    let tracked = Telemetry.enabled telemetry in
    let stride = Sa.sweep_stride params.sweeps in
    let run r =
      if stopped () then None
      else begin
        let rng = Prng.stream ~seed:params.seed r in
        let on_sweep =
          if not tracked then None
          else
            Some
              (fun ~sweep ~best ~swaps ->
                if sweep mod stride = 0 || sweep = params.sweeps then begin
                  Telemetry.emit telemetry "pt.sweep"
                    [
                      ("read", Telemetry.Int r);
                      ("sweep", Telemetry.Int sweep);
                      ("energy", Telemetry.Float best);
                      ("swaps", Telemetry.Int swaps);
                    ];
                  if swaps > 0 then Telemetry.count telemetry "pt.replica_swaps" swaps
                end)
        in
        let init = if r = 0 then init else None in
        (* The ladder fits in one packed word up to 64 rungs; wider
           ladders keep the scalar per-replica states. *)
        let run_read =
          if params.replicas <= Multispin.max_lanes then run_read_packed else run_read
        in
        let ((bits, e) as sample) = run_read ~ising ~params ~betas ?init ?stop ?on_sweep rng in
        if tracked then begin
          Telemetry.count telemetry "pt.reads" 1;
          Telemetry.count telemetry "pt.sweeps" params.sweeps;
          Telemetry.observe telemetry "pt.read_energy" e
        end;
        (match on_read with Some f -> f bits | None -> ());
        Some sample
      end
    in
    let t0 = if tracked then Qsmt_util.Mclock.now () else 0. in
    let samples = Parallel.init_array ~telemetry ~domains:params.domains params.reads run in
    if tracked then begin
      let done_reads =
        Array.fold_left (fun a s -> match s with Some _ -> a + 1 | None -> a) 0 samples
      in
      let sweeps_done = float_of_int (done_reads * params.sweeps) in
      (* one PT sweep proposes a flip per spin per replica rung *)
      Sa.throughput_gauges telemetry ~name:"pt" ~sweeps_done
        ~flips_done:(sweeps_done *. float_of_int (n * params.replicas))
        ~dt:(Qsmt_util.Mclock.now () -. t0)
    end;
    Sampleset.of_tracked q (List.filter_map Fun.id (Array.to_list samples))
  end
