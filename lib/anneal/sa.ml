module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Parallel = Qsmt_util.Parallel
module Telemetry = Qsmt_util.Telemetry
module Mclock = Qsmt_util.Mclock
module Qubo = Qsmt_qubo.Qubo
module Ising = Qsmt_qubo.Ising
module Fields = Qsmt_qubo.Fields
module Multispin = Qsmt_qubo.Multispin

type params = {
  reads : int;
  sweeps : int;
  schedule : Schedule.t option;
  seed : int;
  domains : int;
  postprocess : bool;
}

let default = { reads = 32; sweeps = 1000; schedule = None; seed = 0; domains = 1; postprocess = false }

let read_rng ~seed r = Prng.stream ~seed r

(* The Metropolis loop over an already-built incremental state: O(1) per
   proposal, O(degree) per accepted flip. The loop body exists twice:
   the bare variant is the benchmarked hot kernel and must not pay for
   observability it isn't using; the counting variant additionally tracks
   accepted flips for the per-sweep callback. *)
let anneal_fields ~rng ~schedule ?on_sweep ?stop fields =
  let n = Fields.num_spins fields in
  let stopped () = match stop with Some f -> f () | None -> false in
  let k = ref 0 in
  let sweeps = Schedule.sweeps schedule in
  match on_sweep with
  | None ->
    while !k < sweeps && not (stopped ()) do
      let beta = Schedule.beta schedule !k in
      for i = 0 to n - 1 do
        let delta = Fields.delta fields i in
        if delta <= 0. || Prng.float rng < Float.exp (-.beta *. delta) then Fields.flip fields i
      done;
      incr k
    done
  | Some f ->
    while !k < sweeps && not (stopped ()) do
      let beta = Schedule.beta schedule !k in
      let accepted = ref 0 in
      for i = 0 to n - 1 do
        let delta = Fields.delta fields i in
        if delta <= 0. || Prng.float rng < Float.exp (-.beta *. delta) then begin
          Fields.flip fields i;
          incr accepted
        end
      done;
      f ~sweep:!k ~energy:(Fields.energy fields) ~accepted:!accepted;
      incr k
    done

let anneal_ising ~rng ~schedule ?init ?on_sweep ?stop ising =
  let n = Ising.num_spins ising in
  let spins = match init with Some s -> Bitvec.copy s | None -> Bitvec.random rng n in
  let fields = Fields.create ising spins in
  anneal_fields ~rng ~schedule ?on_sweep ?stop fields;
  (spins, Fields.energy fields)

let descend_fields fields =
  (* Steepest descent over cached deltas: picking the best move is an
     O(n) scan of O(1) reads instead of n adjacency-row rescans.
     Terminates because energy strictly decreases. *)
  let n = Fields.num_spins fields in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_i = ref (-1) and best_delta = ref 0. in
    for i = 0 to n - 1 do
      let d = Fields.delta fields i in
      if d < !best_delta then begin
        best_delta := d;
        best_i := i
      end
    done;
    if !best_i >= 0 then begin
      Fields.flip fields !best_i;
      improved := true
    end
  done

(* Strided sweep instrumentation: full trajectories at telemetry
   resolution would be reads x sweeps events; one event every
   [sweeps/32] sweeps (plus the final sweep) keeps traces readable while
   preserving the curve's shape. Shared by every sweep-loop sampler. *)
let sweep_stride sweeps = max 1 (sweeps / 32)

(* Post-run throughput gauges shared by the sweep-loop samplers:
   [<name>.sweeps_per_s] and [<name>.flips_per_s] (flips = attempted
   Metropolis proposals, sweeps × spins — the same convention the flip
   throughput bench uses). Nominal sweep counts: an early-exited read is
   charged its full budget, which overstates throughput by at most the
   truncated tail. *)
let throughput_gauges telemetry ~name ~sweeps_done ~flips_done ~dt =
  if dt > 0. && sweeps_done > 0. then begin
    Telemetry.gauge telemetry (name ^ ".sweeps_per_s") (sweeps_done /. dt);
    Telemetry.gauge telemetry (name ^ ".flips_per_s") (flips_done /. dt)
  end

let sample ?(params = default) ?init ?stop ?on_read ?(telemetry = Telemetry.null) q =
  if params.reads < 1 then invalid_arg "Sa.sample: reads < 1";
  if params.sweeps < 1 then invalid_arg "Sa.sample: sweeps < 1";
  let n = Qubo.num_vars q in
  (match init with
  | Some b when Bitvec.length b <> n ->
    invalid_arg
      (Printf.sprintf "Sa.sample: init has %d bits, problem has %d vars" (Bitvec.length b) n)
  | _ -> ());
  if n = 0 then Sampleset.of_bits q [ Bitvec.create 0 ]
  else begin
    let ising = Ising.of_qubo q in
    let schedule =
      match params.schedule with
      | Some s -> s
      | None -> Schedule.auto ~sweeps:params.sweeps ising
    in
    let stopped () = match stop with Some f -> f () | None -> false in
    let tracked = Telemetry.enabled telemetry in
    let sweeps = Schedule.sweeps schedule in
    let stride = sweep_stride sweeps in
    let run_read r =
      if stopped () then None
      else begin
        let rng = read_rng ~seed:params.seed r in
        (* Warm start: read 0 anneals from the caller's seed assignment
           (reverse-anneal style); the other reads stay random so the set
           retains diversity. *)
        let start =
          match init with
          | Some b when r = 0 -> Bitvec.copy b
          | _ -> Bitvec.random rng n
        in
        let fields = Fields.create ising start in
        let on_sweep =
          if not tracked then None
          else
            Some
              (fun ~sweep ~energy ~accepted ->
                if sweep mod stride = 0 || sweep = sweeps - 1 then
                  Telemetry.emit telemetry "sa.sweep"
                    [
                      ("read", Telemetry.Int r);
                      ("sweep", Telemetry.Int sweep);
                      ("beta", Telemetry.Float (Schedule.beta schedule sweep));
                      ("energy", Telemetry.Float energy);
                      ("acceptance", Telemetry.Float (float_of_int accepted /. float_of_int n));
                    ])
        in
        anneal_fields ~rng ~schedule ?on_sweep ?stop fields;
        if params.postprocess then descend_fields fields;
        let spins = Fields.spins fields in
        if tracked then begin
          Telemetry.count telemetry "sa.reads" 1;
          Telemetry.count telemetry "sa.sweeps" sweeps;
          Telemetry.observe telemetry "sa.read_energy" (Fields.energy fields)
        end;
        (match on_read with Some f -> f spins | None -> ());
        Some (spins, Fields.energy fields)
      end
    in
    let t0 = if tracked then Mclock.now () else 0. in
    let samples = Parallel.init_array ~telemetry ~domains:params.domains params.reads run_read in
    if tracked then begin
      let done_reads =
        Array.fold_left (fun a s -> match s with Some _ -> a + 1 | None -> a) 0 samples
      in
      let sweeps_done = float_of_int (done_reads * sweeps) in
      throughput_gauges telemetry ~name:"sa" ~sweeps_done
        ~flips_done:(sweeps_done *. float_of_int n) ~dt:(Mclock.now () -. t0)
    end;
    Sampleset.of_tracked q (List.filter_map Fun.id (Array.to_list samples))
  end

type packed_mode = Bucketed | Lockstep

let popcount64 w =
  let c = ref 0 in
  let m = ref w in
  while !m <> 0L do
    incr c;
    m := Int64.logand !m (Int64.sub !m 1L)
  done;
  !c

(* Multi-read SA over the packed kernel: reads are grouped 64 to a
   Multispin state, so one sweep's CSR traffic serves a whole group of
   reads. Starts come from the same per-read streams the scalar path
   uses, so the two paths explore from identical configurations; in
   [Lockstep] mode acceptance also consumes those streams with the
   scalar discipline and the decoded samples are bit-identical to
   {!sample}'s (postprocess off). [Bucketed] is the fast path: exact
   Metropolis marginals from a per-group bulk stream. *)
let run_packed ?(params = default) ?(mode = Bucketed) ?init ?stop ?on_read
    ?(telemetry = Telemetry.null) q =
  if params.reads < 1 then invalid_arg "Sa.run_packed: reads < 1";
  if params.sweeps < 1 then invalid_arg "Sa.run_packed: sweeps < 1";
  let n = Qubo.num_vars q in
  (match init with
  | Some b when Bitvec.length b <> n ->
    invalid_arg
      (Printf.sprintf "Sa.run_packed: init has %d bits, problem has %d vars" (Bitvec.length b) n)
  | _ -> ());
  if n = 0 then Sampleset.of_bits q [ Bitvec.create 0 ]
  else begin
    let ising = Ising.of_qubo q in
    let schedule =
      match params.schedule with
      | Some s -> s
      | None -> Schedule.auto ~sweeps:params.sweeps ising
    in
    let stopped () = match stop with Some f -> f () | None -> false in
    let tracked = Telemetry.enabled telemetry in
    let sweeps = Schedule.sweeps schedule in
    let stride = sweep_stride sweeps in
    let groups = (params.reads + Multispin.max_lanes - 1) / Multispin.max_lanes in
    let run_group g =
      if stopped () then None
      else begin
        let r0 = g * Multispin.max_lanes in
        let lanes = min Multispin.max_lanes (params.reads - r0) in
        (* Same per-read streams and warm-start rule as the scalar path:
           lane l of group g is read r0 + l. *)
        let rngs = Array.init lanes (fun l -> read_rng ~seed:params.seed (r0 + l)) in
        let starts =
          Array.init lanes (fun l ->
              match init with
              | Some b when r0 + l = 0 -> Bitvec.copy b
              | _ -> Bitvec.random rngs.(l) n)
        in
        let ms = Multispin.create ising starts in
        (* The bucketed accept path draws from one stream per group,
           disjoint from every per-read stream. *)
        let bulk_rng = read_rng ~seed:params.seed (params.reads + g) in
        let dr = Multispin.draws bulk_rng in
        let betas = Array.make lanes 0. in
        let deltas = Array.make lanes 0. in
        let k = ref 0 in
        while !k < sweeps && not (stopped ()) do
          let beta = Schedule.beta schedule !k in
          let accepted = ref 0 in
          (match mode with
          | Bucketed -> accepted := Multispin.metropolis_sweep ms ~draws:dr ~beta
          | Lockstep ->
            Array.fill betas 0 lanes beta;
            for i = 0 to n - 1 do
              Multispin.deltas ms i deltas;
              let mask = Multispin.accept_mask_lockstep ms ~rngs ~betas deltas in
              if mask <> 0L then begin
                Multispin.flip ms i mask;
                if tracked then accepted := !accepted + popcount64 mask
              end
            done);
          if tracked && (!k mod stride = 0 || !k = sweeps - 1) then
            Telemetry.emit telemetry "sa.packed_sweep"
              [
                ("group", Telemetry.Int g);
                ("lanes", Telemetry.Int lanes);
                ("sweep", Telemetry.Int !k);
                ("beta", Telemetry.Float beta);
                ("best_energy", Telemetry.Float (Multispin.energy ms (Multispin.best_lane ms)));
                ( "acceptance",
                  Telemetry.Float (float_of_int !accepted /. float_of_int (n * lanes)) );
              ];
          incr k
        done;
        let out =
          Array.init lanes (fun l ->
              let spins = Multispin.lane_spins ms l in
              let energy =
                if params.postprocess then begin
                  let fields = Fields.create ising spins in
                  descend_fields fields;
                  Fields.energy fields
                end
                else Multispin.energy ms l
              in
              (match on_read with Some f -> f spins | None -> ());
              (spins, energy))
        in
        if tracked then begin
          Telemetry.count telemetry "sa.reads" lanes;
          (* lane-sweeps, so packed and scalar throughput are comparable *)
          Telemetry.count telemetry "sa.sweeps" (sweeps * lanes);
          Array.iter (fun (_, e) -> Telemetry.observe telemetry "sa.read_energy" e) out
        end;
        Some out
      end
    in
    let t0 = if tracked then Mclock.now () else 0. in
    let packed = Parallel.init_array ~telemetry ~domains:params.domains groups run_group in
    if tracked then begin
      let done_lanes =
        Array.fold_left (fun a g -> match g with Some o -> a + Array.length o | None -> a) 0 packed
      in
      let sweeps_done = float_of_int (done_lanes * sweeps) in
      throughput_gauges telemetry ~name:"sa" ~sweeps_done
        ~flips_done:(sweeps_done *. float_of_int n) ~dt:(Mclock.now () -. t0)
    end;
    Sampleset.of_tracked q
      (List.concat_map
         (function None -> [] | Some a -> Array.to_list a)
         (Array.to_list packed))
  end
