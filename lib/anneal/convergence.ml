module Prng = Qsmt_util.Prng
module Qubo = Qsmt_qubo.Qubo
module Ising = Qsmt_qubo.Ising

type t = {
  sweeps : int;
  mean_best : float array;
  mean_current : float array;
  final_best : float;
}

let sa_trajectory ?(reads = 16) ?(sweeps = 500) ?(seed = 0) q =
  if reads < 1 then invalid_arg "Convergence.sa_trajectory: reads < 1";
  if sweeps < 1 then invalid_arg "Convergence.sa_trajectory: sweeps < 1";
  if Qubo.num_vars q = 0 then invalid_arg "Convergence.sa_trajectory: empty problem";
  let ising = Ising.of_qubo q in
  let schedule = Schedule.auto ~sweeps ising in
  (* Ising energy and QUBO energy agree (same offset), so recording the
     Ising-side energy directly is already in QUBO units. *)
  let sum_best = Array.make sweeps 0. in
  let sum_current = Array.make sweeps 0. in
  let final_best = ref infinity in
  for r = 0 to reads - 1 do
    let rng = Prng.stream ~seed r in
    let best = ref infinity in
    let on_sweep ~sweep ~energy ~accepted:_ =
      if energy < !best then best := energy;
      sum_best.(sweep) <- sum_best.(sweep) +. !best;
      sum_current.(sweep) <- sum_current.(sweep) +. energy
    in
    let (_ : Qsmt_util.Bitvec.t * float) = Sa.anneal_ising ~rng ~schedule ~on_sweep ising in
    if !best < !final_best then final_best := !best
  done;
  let scale = 1. /. float_of_int reads in
  {
    sweeps;
    mean_best = Array.map (fun v -> v *. scale) sum_best;
    mean_current = Array.map (fun v -> v *. scale) sum_current;
    final_best = !final_best;
  }

let sweeps_to_reach t ~target ?(tol = 1e-9) () =
  let rec go k =
    if k >= t.sweeps then None
    else if t.mean_best.(k) <= target +. tol then Some k
    else go (k + 1)
  in
  go 0

let pp ppf t =
  let sample k = t.mean_best.(min (t.sweeps - 1) k) in
  Format.fprintf ppf "best-energy trajectory: %.3g -> %.3g -> %.3g -> %.3g -> %.3g (final best %.3g)"
    (sample 0)
    (sample (t.sweeps / 4))
    (sample (t.sweeps / 2))
    (sample (3 * t.sweeps / 4))
    (sample (t.sweeps - 1))
    t.final_best
