let success_probability samples ~ground_energy ?(tol = 1e-9) () =
  let total = Sampleset.total_reads samples in
  if total = 0 then 0.
  else begin
    let good =
      List.fold_left
        (fun acc e ->
          if e.Sampleset.energy <= ground_energy +. tol then acc + e.Sampleset.occurrences
          else acc)
        0 (Sampleset.entries samples)
    in
    float_of_int good /. float_of_int total
  end

let check_confidence confidence =
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Metrics: confidence must be in (0,1)"

let repeats_needed ~p_success ~confidence =
  check_confidence confidence;
  if p_success <= 0. then None
  else if p_success >= 1. then Some 1
  else begin
    let r = Float.log (1. -. confidence) /. Float.log (1. -. p_success) in
    Some (max 1 (int_of_float (Float.ceil r)))
  end

let time_to_solution ~time_per_read ~p_success ?(confidence = 0.99) () =
  if time_per_read <= 0. then invalid_arg "Metrics.time_to_solution: non-positive time_per_read";
  check_confidence confidence;
  if p_success <= 0. then None
  else if p_success >= 1. then Some time_per_read
  else Some (time_per_read *. Float.log (1. -. confidence) /. Float.log (1. -. p_success))

let residual_energy samples ~ground_energy =
  let total = Sampleset.total_reads samples in
  if total = 0 then None
  else begin
    let sum =
      List.fold_left
        (fun acc e ->
          acc +. ((e.Sampleset.energy -. ground_energy) *. float_of_int e.Sampleset.occurrences))
        0. (Sampleset.entries samples)
    in
    Some (sum /. float_of_int total)
  end

let pp_tts ppf = function
  | None -> Format.pp_print_string ppf "n/a"
  | Some t ->
    if t >= 1. then Format.fprintf ppf "%.2f s" t
    else if t >= 1e-3 then Format.fprintf ppf "%.2f ms" (1e3 *. t)
    else Format.fprintf ppf "%.1f us" (1e6 *. t)
