module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Qubo = Qsmt_qubo.Qubo
module Qgraph = Qsmt_qubo.Qgraph

let default_strength q = Float.max 1. (2. *. Qubo.max_abs_coefficient q)

let max_local_field q =
  let n = Qubo.num_vars q in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    let field = ref (Float.abs (Qubo.linear q i)) in
    List.iter (fun (_, v) -> field := !field +. Float.abs v) (Qubo.neighbors q i);
    if !field > !worst then worst := !field
  done;
  !worst

let embed_qubo q ~embedding ~hardware ~chain_strength =
  let b = Qubo.builder () in
  Qubo.iter_linear q (fun i v ->
      let c = Embedding.chain embedding i in
      let share = v /. float_of_int (List.length c) in
      List.iter (fun qubit -> Qubo.add b qubit qubit share) c);
  Qubo.iter_quadratic q (fun i j v ->
      let ci = Embedding.chain embedding i and cj = Embedding.chain embedding j in
      let edges =
        List.concat_map
          (fun a -> List.filter_map (fun bq -> if Qgraph.mem_edge hardware a bq then Some (a, bq) else None) cj)
          ci
      in
      match edges with
      | [] ->
        invalid_arg
          (Printf.sprintf "Chain.embed_qubo: coupler (%d,%d) has no hardware edge between chains" i
             j)
      | _ ->
        let share = v /. float_of_int (List.length edges) in
        List.iter (fun (a, bq) -> Qubo.add b a bq share) edges);
  (* Ferromagnetic chain penalty on every intra-chain hardware edge:
     C(x_a - x_b)^2 = C x_a + C x_b - 2C x_a x_b. *)
  Array.iter
    (fun c ->
      List.iter
        (fun a ->
          List.iter
            (fun bq ->
              if a < bq && Qgraph.mem_edge hardware a bq then begin
                Qubo.add b a a chain_strength;
                Qubo.add b bq bq chain_strength;
                Qubo.add b a bq (-2. *. chain_strength)
              end)
            c)
        c)
    (Embedding.chains embedding);
  Qubo.add_offset b (Qubo.offset q);
  Qubo.freeze ~num_vars:(Qgraph.num_vertices hardware) b

let unembed ?rng ~embedding sample =
  let n = Embedding.num_problem_vars embedding in
  Bitvec.init n (fun v ->
      let c = Embedding.chain embedding v in
      let ones = List.fold_left (fun acc q -> if Bitvec.get sample q then acc + 1 else acc) 0 c in
      let len = List.length c in
      (* An even-length chain split exactly in half carries no signal;
         resolving it deterministically toward 1 (the seed behavior)
         skewed decoded strings. Given a PRNG, flip a fair coin the way
         D-Wave's majority_vote does; without one, keep the old
         deterministic bias for reproducibility of legacy callers. *)
      if 2 * ones = len then match rng with Some r -> Prng.bool r | None -> true
      else 2 * ones > len)

let chain_break_fraction ~embedding sample =
  let n = Embedding.num_problem_vars embedding in
  if n = 0 then 0.
  else begin
    let broken = ref 0 in
    for v = 0 to n - 1 do
      let c = Embedding.chain embedding v in
      let ones = List.fold_left (fun acc q -> if Bitvec.get sample q then acc + 1 else acc) 0 c in
      if ones <> 0 && ones <> List.length c then incr broken
    done;
    float_of_int !broken /. float_of_int n
  end
