(** Parallel sampler portfolio with early exit.

    No single heuristic dominates across QUBO instances (Oshiyama &
    Ohzeki's benchmark), so instead of betting on one sampler the
    portfolio races several — SA, SQA, parallel tempering, tabu, greedy,
    optionally exact — concurrently over the shared
    {!Qsmt_util.Parallel.Pool} and merges their sample sets. When the
    caller supplies a [verify] predicate (the string-theory solver passes
    its constraint checker on decoded bits), the first read that verifies
    wins: a shared stop flag trips and every other member cancels
    cooperatively at its next poll point, so time-to-solution is the
    fastest member's, not the slowest's.

    A per-member wall-clock [budget] bounds each member independently,
    so one slow member (e.g. [M_exact] on a 30-variable problem) cannot
    hang the portfolio past its deadline. *)

type member =
  | M_sa of Sa.params
  | M_sa_packed of Sa.params
      (** multi-read SA through the bit-parallel {!Qsmt_qubo.Multispin}
          kernel ({!Sa.run_packed}): same read semantics as [M_sa], one
          packed state per 64 reads — the high-reads racer *)
  | M_sqa of Sqa.params
  | M_tabu of Tabu.params
  | M_pt of Pt.params
  | M_greedy of Greedy.params
  | M_exact of int option  (** [keep] for {!Exact.solve} *)
  | M_hardware of Hardware.params
      (** the QPU-workflow emulation ({!Hardware.sample}): races
          topology-constrained sampling against the all-to-all heuristics;
          its reads reach the shared verifier already unembedded *)

type params = {
  members : member list;  (** raced samplers, in report order *)
  jobs : int;
      (** concurrent members; [<= 0] (default) means
          {!Qsmt_util.Parallel.recommended_domains} *)
  budget : float option;
      (** per-member wall-clock budget in seconds; [None] = unbounded *)
}

type member_report = {
  member_name : string;
  samples : Sampleset.t;  (** possibly empty if cancelled before any read *)
  elapsed : float;  (** wall-clock seconds this member ran *)
  cancelled : bool;  (** stopped early (win elsewhere or budget) *)
  failed : string option;
      (** exception text if the member (or the verify scan over its
          samples) raised — a crashed member never aborts the race, it
          surfaces here while the survivors keep running, and each
          failure bumps the [portfolio.member_failed] counter *)
  hardware : Hardware.stats option;
      (** chain/embedding diagnostics, for [M_hardware] members only *)
}

type result = {
  merged : Sampleset.t;  (** all members' samples, re-aggregated *)
  winner : (string * Qsmt_util.Bitvec.t) option;
      (** first verified (member, bits), if [verify] was given and hit *)
  reports : member_report list;  (** one per member, in [members] order *)
  wall_time : float;
}

val default_members : seed:int -> member list
(** SA, SQA, PT, tabu, greedy with default parameters, all reseeded to
    [seed] and internal read-parallelism off (the portfolio spends its
    concurrency across members). *)

val default : params
(** [default_members ~seed:0], auto [jobs], no budget. *)

val reseed : params -> int -> params
(** Reseeds every member ([M_exact] is seedless and unchanged;
    [M_hardware] reseeds its inner annealer). *)

val run :
  ?params:params ->
  ?init:Qsmt_util.Bitvec.t ->
  ?verify:(Qsmt_util.Bitvec.t -> bool) ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  Qsmt_qubo.Qubo.t ->
  result
(** Races the members. [init] warm-starts the first read/restart of every
    heuristic member from the given assignment (ignored by exact and
    hardware members); see {!Sa.sample}. Without [verify] (and with no
    budget) every member
    runs to completion and [merged] is deterministic — a pure function of
    [params], independent of [jobs]. With [verify], member sample sets
    may be truncated by early exit, but [merged] always contains the
    winning read.

    [telemetry] is shared with every member (their sweep streams and
    counters interleave in the trace) and additionally records the member
    lifecycle: [portfolio.member.start] (member, index),
    [portfolio.member.done] (member, index, elapsed_s, reads, cancelled,
    failed), [portfolio.winner] (member, elapsed_s since the race
    started) the instant a verified read is published, and a
    [portfolio.member_failed] counter per failed member. The telemetry sink
    is mutex-serialised, so concurrent members may emit freely.
    @raise Invalid_argument on an empty member list or non-positive
    budget. *)
