(** Annealing performance metrics.

    The annealing literature's standard figure of merit is not raw time
    but {e time-to-solution}: how long until the ground state has been
    seen at least once with target confidence, accounting for per-read
    success probability. These helpers compute it from a sample set plus
    wall-clock measurements, so benches across samplers compare the
    quantity that actually matters. *)

val success_probability : Sampleset.t -> ground_energy:float -> ?tol:float -> unit -> float
(** Fraction of reads at or below [ground_energy + tol] (default
    [1e-9]). [0.] for an empty set. *)

val repeats_needed : p_success:float -> confidence:float -> int option
(** Smallest [R] with [1 - (1-p)^R >= confidence]: how many reads to see
    the ground state at the target confidence (default use:
    [confidence = 0.99]). [None] when [p_success <= 0] (unreachable);
    [Some 1] when [p_success >= 1].
    @raise Invalid_argument unless [0 < confidence < 1]. *)

val time_to_solution :
  time_per_read:float -> p_success:float -> ?confidence:float -> unit -> float option
(** [TTS = time_per_read · ln(1 − confidence) / ln(1 − p_success)]
    seconds (default confidence 0.99). [None] when [p_success <= 0];
    [Some time_per_read] when [p_success >= 1].
    @raise Invalid_argument on non-positive [time_per_read] or
    [confidence] outside (0,1). *)

val residual_energy : Sampleset.t -> ground_energy:float -> float option
(** Mean energy above ground across all reads ([Some 0.] = every read
    perfect). [None] for an empty set — the mean of nothing is not a
    number, and the seed revision's [nan] leaked into JSON output as a
    parse error. *)

val pp_tts : Format.formatter -> float option -> unit
(** Human units ("3.2 ms"). [None] — the ground state was never seen, so
    no finite repeat count reaches the confidence target — prints "n/a"
    rather than the misleading "inf". *)
