module Telemetry = Qsmt_util.Telemetry
module Decompose = Qsmt_qubo.Decompose

type recipe =
  | R_sa of Sa.params
  | R_sa_packed of Sa.params
  | R_sqa of Sqa.params
  | R_tabu of Tabu.params
  | R_pt of Pt.params
  | R_greedy of Greedy.params
  | R_exact of int option
  | R_hardware of Hardware.params
  | R_hardware_auto of (Qsmt_qubo.Qubo.t -> Hardware.params)
  | R_portfolio of Portfolio.params
  | R_decomposed of { inner : t; dparams : Decompose.params }
  | R_custom of (Qsmt_qubo.Qubo.t -> Sampleset.t)

and t = { name : string; recipe : recipe }

let name t = t.name

let rec with_seed t seed =
  let recipe =
    match t.recipe with
    | R_sa p -> R_sa { p with Sa.seed }
    | R_sa_packed p -> R_sa_packed { p with Sa.seed }
    | R_sqa p -> R_sqa { p with Sqa.seed }
    | R_tabu p -> R_tabu { p with Tabu.seed }
    | R_pt p -> R_pt { p with Pt.seed }
    | R_greedy p -> R_greedy { p with Greedy.seed }
    | R_hardware p -> R_hardware { p with Hardware.anneal = { p.Hardware.anneal with Sa.seed } }
    | R_hardware_auto f ->
      R_hardware_auto
        (fun q ->
          let p = f q in
          { p with Hardware.anneal = { p.Hardware.anneal with Sa.seed } })
    | R_portfolio p -> R_portfolio (Portfolio.reseed p seed)
    | R_decomposed { inner; dparams } ->
      R_decomposed { inner = with_seed inner seed; dparams = { dparams with Decompose.seed } }
    | (R_exact _ | R_custom _) as r -> r
  in
  { t with recipe }

let rec run_detailed ?verify ?init ?(early_exit = false) ?(telemetry = Qsmt_util.Telemetry.null) t q
    =
  (* Early exit is opt-in (and needs a verifier): the stop/on_read hooks
     truncate the heuristic samplers' read loops on the first verified
     read, which changes the sample set — cold solves keep the exhaustive
     deterministic behavior, incremental warm re-solves turn this on. *)
  let hooks () =
    match verify with
    | Some ok when early_exit ->
      let found = Atomic.make false in
      let stop () = Atomic.get found in
      let on_read bits = if (not (Atomic.get found)) && ok bits then Atomic.set found true in
      (Some stop, Some on_read)
    | _ -> (None, None)
  in
  match t.recipe with
  | R_sa params ->
    let stop, on_read = hooks () in
    (Sa.sample ~params ?init ?stop ?on_read ~telemetry q, None)
  | R_sa_packed params ->
    let stop, on_read = hooks () in
    (Sa.run_packed ~params ?init ?stop ?on_read ~telemetry q, None)
  | R_sqa params ->
    let stop, on_read = hooks () in
    (Sqa.sample ~params ?init ?stop ?on_read ~telemetry q, None)
  | R_tabu params ->
    let stop, on_read = hooks () in
    (Tabu.sample ~params ?init ?stop ?on_read ~telemetry q, None)
  | R_pt params ->
    let stop, on_read = hooks () in
    (Pt.sample ~params ?init ?stop ?on_read ~telemetry q, None)
  | R_greedy params ->
    let stop, on_read = hooks () in
    (Greedy.sample ~params ?init ?stop ?on_read ~telemetry q, None)
  | R_exact keep -> (Exact.solve ?keep q, None)
  | R_hardware params ->
    let r = Hardware.sample ~params ~telemetry q in
    (r.Hardware.samples, Some r.Hardware.stats)
  | R_hardware_auto f ->
    let r = Hardware.sample ~params:(f q) ~telemetry q in
    (r.Hardware.samples, Some r.Hardware.stats)
  | R_portfolio params ->
    let r = Portfolio.run ~params ?init ?verify ~telemetry q in
    ( r.Portfolio.merged,
      List.find_map (fun rep -> rep.Portfolio.hardware) r.Portfolio.reports )
  | R_decomposed { inner; dparams } ->
    if Qsmt_qubo.Qubo.num_vars q <= dparams.Decompose.subsize then begin
      (* The problem fits one embedding: delegate to the inner sampler
         with the caller's exact arguments, so --decompose on a fitting
         problem is bit-identical to the inner sampler alone. *)
      Telemetry.count telemetry "decomp.fallback" 1;
      run_detailed ?verify ?init ~early_exit ~telemetry inner q
    end
    else begin
      let tracked = Telemetry.enabled telemetry in
      (* Representative hardware diagnostics: keep the worst shard (the
         highest chain-break fraction) — the one whose reads bound the
         trustworthiness of the stitched answer. *)
      let worst = Atomic.make None in
      let solve_shard ~shard ~round sub =
        (* distinct seed per (shard, round) so repeated rounds explore
           rather than replay; 1024 shards per round is comfortably more
           than any partition produces *)
        let s = with_seed inner (dparams.Decompose.seed + (1024 * round) + shard) in
        let samples, hw = run_detailed ~telemetry s sub in
        (match hw with
        | None -> ()
        | Some st ->
          if tracked then begin
            Telemetry.observe telemetry "decomp.chain_break_fraction"
              st.Hardware.mean_chain_break_fraction;
            if st.Hardware.degraded <> None then
              Telemetry.count telemetry "decomp.shard_degraded" 1
          end;
          let rec publish () =
            let cur = Atomic.get worst in
            let worse =
              match cur with
              | None -> true
              | Some prev ->
                st.Hardware.mean_chain_break_fraction
                > prev.Hardware.mean_chain_break_fraction
            in
            if worse && not (Atomic.compare_and_set worst cur (Some st)) then publish ()
          in
          publish ());
        match Sampleset.best_opt samples with
        | Some e -> e.Sampleset.bits
        | None -> failwith "Sampler.decomposed: inner sampler returned no reads"
      in
      let bits, report = Decompose.solve ~params:dparams ?init ~telemetry ~solve_shard q in
      (* [report.energy] is the whole-problem re-pricing of [bits], so
         the tracked energy is exact by construction. *)
      (Sampleset.of_tracked q [ (bits, report.Decompose.energy) ], Atomic.get worst)
    end
  | R_custom f -> (f q, None)

let run ?verify ?init ?early_exit ?telemetry t q =
  fst (run_detailed ?verify ?init ?early_exit ?telemetry t q)

let make ~name f = { name; recipe = R_custom f }
let simulated_annealing ?(params = Sa.default) () = { name = "sa"; recipe = R_sa params }

let simulated_annealing_packed ?(params = Sa.default) () =
  { name = "sa_packed"; recipe = R_sa_packed params }

let simulated_quantum_annealing ?(params = Sqa.default) () = { name = "sqa"; recipe = R_sqa params }

let tabu ?(params = Tabu.default) () = { name = "tabu"; recipe = R_tabu params }
let parallel_tempering ?(params = Pt.default) () = { name = "pt"; recipe = R_pt params }
let greedy ?(params = Greedy.default) () = { name = "greedy"; recipe = R_greedy params }
let exact ?keep () = { name = "exact"; recipe = R_exact keep }
let hardware ~params = { name = "hardware"; recipe = R_hardware params }
let hardware_auto f = { name = "hardware"; recipe = R_hardware_auto f }
let portfolio ?(params = Portfolio.default) () = { name = "portfolio"; recipe = R_portfolio params }

let decomposed ?(params = Decompose.default) inner =
  { name = inner.name ^ "+decompose"; recipe = R_decomposed { inner; dparams = params } }

let default_suite ~seed =
  [
    simulated_annealing ~params:{ Sa.default with Sa.seed } ();
    simulated_quantum_annealing ~params:{ Sqa.default with Sqa.seed } ();
    parallel_tempering ~params:{ Pt.default with Pt.seed } ();
    tabu ~params:{ Tabu.default with Tabu.seed } ();
    greedy ~params:{ Greedy.default with Greedy.seed } ();
  ]
