module Bitvec = Qsmt_util.Bitvec
module Qubo = Qsmt_qubo.Qubo

type entry = { bits : Bitvec.t; energy : float; occurrences : int }

(* Invariant: ascending energy, no two entries share an assignment. *)
type t = entry list

module Bits_tbl = Hashtbl.Make (struct
  type t = Bitvec.t

  let equal = Bitvec.equal
  let hash = Bitvec.hash
end)

let aggregate entries =
  let tbl = Bits_tbl.create 64 in
  List.iter
    (fun e ->
      match Bits_tbl.find_opt tbl e.bits with
      | Some prior ->
        (* Duplicate assignments can arrive with disagreeing energies
           (e.g. a noisy hardware-model read merged with an exact one);
           keeping the first seen made the merged energy depend on entry
           order. The minimum is order-independent and never ranks an
           assignment worse than any sampler priced it. *)
        Bits_tbl.replace tbl e.bits
          { prior with
            energy = Float.min prior.energy e.energy;
            occurrences = prior.occurrences + e.occurrences }
      | None -> Bits_tbl.add tbl e.bits e)
    entries;
  let all = Bits_tbl.fold (fun _ e acc -> e :: acc) tbl [] in
  List.sort
    (fun a b ->
      let c = compare a.energy b.energy in
      if c <> 0 then c else Bitvec.compare a.bits b.bits)
    all

let of_entries entries = aggregate entries

let of_bits q samples =
  aggregate (List.map (fun bits -> { bits; energy = Qubo.energy q bits; occurrences = 1 }) samples)

let of_tracked q samples =
  let n = Qubo.num_vars q in
  aggregate
    (List.map
       (fun (bits, energy) ->
         if Bitvec.length bits <> n then
           invalid_arg
             (Printf.sprintf "Sampleset.of_tracked: assignment has %d bits, problem has %d vars"
                (Bitvec.length bits) n);
         { bits; energy; occurrences = 1 })
       samples)

let of_multispin q ms =
  let module Multispin = Qsmt_qubo.Multispin in
  of_tracked q
    (List.init (Multispin.lanes ms) (fun l -> (Multispin.lane_spins ms l, Multispin.energy ms l)))

let empty = []
let is_empty t = t = []
let size = List.length
let total_reads t = List.fold_left (fun acc e -> acc + e.occurrences) 0 t

let best = function
  | [] -> invalid_arg "Sampleset.best: empty sample set"
  | e :: _ -> e

let best_opt = function [] -> None | e :: _ -> Some e
let entries t = t

let lowest_energy t = (best t).energy

let energies t =
  let out = Array.make (total_reads t) 0. in
  let k = ref 0 in
  List.iter
    (fun e ->
      for _ = 1 to e.occurrences do
        out.(!k) <- e.energy;
        incr k
      done)
    t;
  out

let filter p t = List.filter p t
let merge a b = aggregate (a @ b)

let truncate k t =
  (* Accumulator + reverse instead of the naive [e :: take (k-1) rest]:
     the recursive form blows the stack when a huge sample set is
     truncated to a still-huge prefix. *)
  let rec take acc k = function
    | [] -> List.rev acc
    | _ when k <= 0 -> List.rev acc
    | e :: rest -> take (e :: acc) (k - 1) rest
  in
  take [] k t

let ground_probability t ~tol =
  match t with
  | [] -> 0.
  | best :: _ ->
    let ground =
      List.fold_left
        (fun acc e -> if e.energy <= best.energy +. tol then acc + e.occurrences else acc)
        0 t
    in
    float_of_int ground /. float_of_int (total_reads t)

let pp ppf t =
  match t with
  | [] -> Format.fprintf ppf "(empty sample set)"
  | _ ->
    Format.fprintf ppf "%d distinct / %d reads@\n" (size t) (total_reads t);
    let shown = truncate 10 t in
    List.iteri
      (fun k e ->
        if k > 0 then Format.pp_print_newline ppf ();
        Format.fprintf ppf "  E=%-12g x%-4d %a" e.energy e.occurrences Bitvec.pp e.bits)
      shown;
    if size t > 10 then Format.fprintf ppf "@\n  ... (%d more)" (size t - 10)
