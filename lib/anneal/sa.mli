(** Simulated annealing sampler.

    The classical stand-in for D-Wave's quantum annealer — and the solver
    the paper actually ran ("we use DWave's Simulated Annealer"). Each
    read is an independent single-spin-flip Metropolis chain over the
    Ising form of the problem, following a β schedule from hot to cold;
    reads can run in parallel across domains (each read owns a PRNG
    stream derived from the master seed, so results are independent of
    the domain count). *)

type params = {
  reads : int;  (** independent annealing runs (default 32) *)
  sweeps : int;  (** full-lattice Metropolis sweeps per read (default 1000) *)
  schedule : Schedule.t option;
      (** β schedule; [None] (default) derives one from the problem via
          {!Schedule.auto} with [sweeps] steps *)
  seed : int;  (** master PRNG seed (default 0) *)
  domains : int;  (** parallel domains for reads (default 1 = sequential) *)
  postprocess : bool;
      (** run steepest-descent to a local minimum after each read
          (default false) *)
}

val default : params

val sweep_stride : int -> int
(** [sweep_stride sweeps] is the sweep-event decimation every sweep-loop
    sampler uses: one telemetry event every [max 1 (sweeps / 32)] sweeps
    (plus the final sweep), so traces stay proportional to reads, not to
    reads × sweeps. *)

val throughput_gauges :
  Qsmt_util.Telemetry.t ->
  name:string ->
  sweeps_done:float ->
  flips_done:float ->
  dt:float ->
  unit
(** Sets the [<name>.sweeps_per_s] and [<name>.flips_per_s] gauges every
    sweep-loop sampler publishes after its reads complete (flips =
    attempted Metropolis proposals, sweeps × spins). No-op when [dt] or
    [sweeps_done] is zero. *)

val sample :
  ?params:params ->
  ?init:Qsmt_util.Bitvec.t ->
  ?stop:(unit -> bool) ->
  ?on_read:(Qsmt_util.Bitvec.t -> unit) ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  Qsmt_qubo.Qubo.t ->
  Sampleset.t
(** Anneals and returns all reads as a sample set (energies are QUBO
    energies, offset included). A zero-variable problem yields a set with
    one empty assignment.

    [init] warm-starts read 0 from the given assignment (reverse-anneal
    style — the incremental solver passes the previous best sample);
    every other read keeps its random start so the set stays diverse.
    Passing [init] changes the PRNG draw sequence, so warm and cold runs
    are not sample-for-sample comparable.
    @raise Invalid_argument if [init] has the wrong length.

    [stop] is a cooperative cancellation flag, polled before each read
    starts and between sweeps inside a read: once it returns [true],
    unstarted reads are skipped and in-flight reads finish their current
    sweep and return early (their partial configurations are still
    included). The returned set may then hold fewer than [reads] samples,
    or none. [on_read] observes each completed read's final bits — the
    portfolio solver uses it to verify decodes and trip [stop] as soon as
    one read solves the constraint. Without [stop]/[on_read] the result is
    a pure function of [params], independent of [domains].

    [telemetry] (default {!Qsmt_util.Telemetry.null}) streams strided
    [sa.sweep] events (read, sweep, β, tracked energy, acceptance rate)
    plus an [sa.reads] counter and an [sa.read_energy] histogram.
    Instrumentation never touches the PRNG, so samples are bit-identical
    with telemetry on or off. *)

type packed_mode =
  | Bucketed
      (** Fast path: one bulk PRNG stream per 64-read group; accept
          decisions for all lanes come from geometric octave bucketing
          ({!Qsmt_qubo.Multispin.accept_mask}). Exact Metropolis
          marginals, but a different draw sequence than {!sample}. *)
  | Lockstep
      (** Parity path: each lane consumes its own per-read stream with
          the scalar sweep's exact conditional-draw discipline
          ({!Qsmt_qubo.Multispin.accept_mask_lockstep}); decoded samples
          are bit-identical to {!sample}'s (with [postprocess] off).
          Slower — this is the oracle-check vehicle, not the perf
          path. *)

val run_packed :
  ?params:params ->
  ?mode:packed_mode ->
  ?init:Qsmt_util.Bitvec.t ->
  ?stop:(unit -> bool) ->
  ?on_read:(Qsmt_util.Bitvec.t -> unit) ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  Qsmt_qubo.Qubo.t ->
  Sampleset.t
(** Multi-read SA through the bit-parallel {!Qsmt_qubo.Multispin}
    kernel: reads are packed 64 to a word-parallel state ([reads] not a
    multiple of 64 leaves the last group with masked tail lanes), so one
    CSR pass per site per sweep advances a whole group. Semantics match
    {!sample}: same per-read starting configurations (derived from the
    same streams), same schedule, same warm-start rule for [init], same
    [stop] polling granularity (between sweeps, whole group), same
    [on_read] observation of each decoded read, and [postprocess] runs
    the same steepest descent per decoded lane. [mode] defaults to
    {!Bucketed}. [domains] parallelises across groups, so it only helps
    past 64 reads. Telemetry: strided [sa.packed_sweep] events (group,
    lanes, sweep, β, best tracked energy, acceptance across lanes) plus
    the same [sa.reads] / [sa.read_energy] aggregates as {!sample}. *)

val anneal_ising :
  rng:Qsmt_util.Prng.t ->
  schedule:Schedule.t ->
  ?init:Qsmt_util.Bitvec.t ->
  ?on_sweep:(sweep:int -> energy:float -> accepted:int -> unit) ->
  ?stop:(unit -> bool) ->
  Qsmt_qubo.Ising.t ->
  Qsmt_util.Bitvec.t * float
(** One annealing read over an Ising problem: starts from [init] (random
    if omitted), runs the full schedule, returns the final spin
    configuration and its (incrementally tracked) energy. Exposed for
    composition (the hardware model reuses it on embedded problems).
    The whole read runs on a {!Qsmt_qubo.Fields} state, so proposals are
    O(1) and the energy is always available; [on_sweep] observes it after
    every sweep together with the number of accepted flips that sweep
    (used by {!Convergence} to record trajectories and by telemetry for
    acceptance rates). The bare no-callback loop is kept separate so the
    benchmarked kernel pays nothing when unobserved. [stop]
    is polled between sweeps; when it returns [true] the read returns its
    current configuration immediately. *)
