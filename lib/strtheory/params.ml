type t = {
  a : float;
  strong_scale : float;
  soft_scale : float;
  includes_b : float;
  includes_d : float;
}

let default = { a = 1.0; strong_scale = 2.0; soft_scale = 0.1; includes_b = 2.0; includes_d = 1.0 }

type invalid_reason = Nonpositive | Not_finite

type invalid = { field : string; value : float; reason : invalid_reason }

let invalid_message { field; value; reason } =
  match reason with
  | Nonpositive -> Printf.sprintf "Params.%s must be positive, got %g" field value
  | Not_finite -> Printf.sprintf "Params.%s must be finite, got %g" field value

let validate t =
  let check field value =
    (* NaN fails both comparisons below, so test finiteness first to
       report it as Not_finite rather than falling through. *)
    if not (Float.is_finite value) then Error { field; value; reason = Not_finite }
    else if value <= 0. then Error { field; value; reason = Nonpositive }
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = check "a" t.a in
  let* () = check "strong_scale" t.strong_scale in
  let* () = check "soft_scale" t.soft_scale in
  let* () = check "includes_b" t.includes_b in
  check "includes_d" t.includes_d

let pp ppf t =
  Format.fprintf ppf "A=%g strong=%g soft=%g B=%g D=%g" t.a t.strong_scale t.soft_scale
    t.includes_b t.includes_d
