module Analyze = Qsmt_qubo.Analyze
module Qubo = Qsmt_qubo.Qubo
module Qgraph = Qsmt_qubo.Qgraph
module Chain = Qsmt_anneal.Chain
module Embedding = Qsmt_anneal.Embedding
module Hardware = Qsmt_anneal.Hardware
module Topology = Qsmt_anneal.Topology
module Telemetry = Qsmt_util.Telemetry

type finding = Analyze.finding
type severity = Analyze.severity

(* ------------------------------------------------------------------ *)
(* configuration *)

type chain_spec = {
  kind : Hardware.topology_kind;
  size : int;
  strength : float option;
  embed_seed : int;
  embed_tries : int;
}

let chain_spec ?(size = 0) ?strength ?(seed = 0) ?(tries = 16) kind =
  { kind; size; strength; embed_seed = seed; embed_tries = tries }

type config = {
  analyze : Analyze.config;
  soundness : bool;
  chain : chain_spec option;
}

let default_config = { analyze = Analyze.default_config; soundness = true; chain = None }

let finding severity check location message =
  { Analyze.severity; check; location; message }

(* ------------------------------------------------------------------ *)
(* soundness / gap (exhaustive, against the classical oracle) *)

let soundness_findings config constr q =
  match Analyze.enumerate ~max_vars:config.analyze.Analyze.max_enum_vars q with
  | Error free ->
    [
      finding Analyze.Info "enumeration-skipped" Analyze.Global
        (Printf.sprintf
           "residual keeps %d free variables (> %d): ground-set soundness not statically checked"
           free config.analyze.Analyze.max_enum_vars);
    ]
  | Ok e ->
    let tol = Analyze.ground_tolerance e in
    let max_abs = Qubo.max_abs_coefficient q in
    let gap_threshold = config.analyze.Analyze.gap_fraction *. max_abs in
    let unsound_examples = ref [] in
    let unsound_count = ref 0 in
    let min_violating = ref infinity in
    let sat_above_ground = ref 0 in
    let n = Array.length e.Analyze.energies in
    for k = 0 to n - 1 do
      let energy = e.Analyze.energies.(k) in
      let value = Compile.decode constr (Analyze.assignment e k) in
      let sat = Constr.verify constr value in
      if energy <= e.Analyze.ground_energy +. tol then begin
        if not sat then begin
          incr unsound_count;
          if List.length !unsound_examples < 3 then
            unsound_examples := (value, energy) :: !unsound_examples
        end
      end
      else if sat then incr sat_above_ground
      else if energy < !min_violating then min_violating := energy
    done;
    let unsound =
      List.rev_map
        (fun (value, energy) ->
          finding Analyze.Error "unsound-ground-state" Analyze.Global
            (Format.asprintf
               "ground state (energy %g) decodes to %a, which violates the constraint" energy
               Constr.pp_value value))
        !unsound_examples
    in
    let unsound =
      if !unsound_count > List.length unsound then
        unsound
        @ [
            finding Analyze.Error "unsound-ground-state" Analyze.Global
              (Printf.sprintf "%d further violating ground state(s) not listed"
                 (!unsound_count - List.length unsound));
          ]
      else unsound
    in
    let gap =
      if Float.is_finite !min_violating then begin
        let g = !min_violating -. e.Analyze.ground_energy in
        if g < gap_threshold then
          [
            finding Analyze.Warning "penalty-gap" Analyze.Global
              (Printf.sprintf
                 "minimum gap between satisfying and violating assignments is %g (< %g = %g x \
                  max|Q|): noise this small flips the answer"
                 g gap_threshold config.analyze.Analyze.gap_fraction);
          ]
        else []
      end
      else []
    in
    let shallow =
      match e.Analyze.min_flip_gap with
      | Some g when g < gap_threshold ->
        [
          finding Analyze.Warning "shallow-excitation" Analyze.Global
            (Printf.sprintf
               "shallowest single-bit excitation from a ground state is %g (< %g = %g x max|Q|): \
                a soft bias this weak is easily lost to thermal noise or rounding"
               g gap_threshold config.analyze.Analyze.gap_fraction);
        ]
      | _ -> []
    in
    let preference =
      if !sat_above_ground > 0 then
        [
          finding Analyze.Info "soft-preference" Analyze.Global
            (Printf.sprintf
               "%d satisfying assignment(s) lie above the ground energy: soft biases / \
                first-match preference steer the sampler to a subset of the solutions"
               !sat_above_ground);
        ]
      else []
    in
    unsound @ gap @ shallow @ preference

(* ------------------------------------------------------------------ *)
(* chain-strength adequacy *)

let chain_findings config spec q =
  if Qubo.num_vars q = 0 then []
  else begin
    let topology =
      if spec.size > 0 then
        Ok
          (match spec.kind with
          | `Chimera -> Topology.chimera ~m:spec.size ()
          | `King -> Topology.king ~rows:spec.size ~cols:spec.size
          | `Complete -> Topology.complete spec.size)
      else
        match Hardware.auto_topology ~seed:spec.embed_seed ~kind:spec.kind q with
        | topo -> Ok topo
        | exception Hardware.Embedding_failed msg -> Error msg
    in
    match topology with
    | Error msg -> [ finding Analyze.Error "no-embedding" Analyze.Global msg ]
    | Ok topo -> begin
      let problem = Qgraph.of_qubo q in
      let hardware = Topology.graph topo in
      match
        Embedding.find ~seed:spec.embed_seed ~tries:spec.embed_tries ~problem ~hardware ()
      with
      | None ->
        [
          finding Analyze.Error "no-embedding" Analyze.Global
            (Printf.sprintf "problem does not embed into %s within %d tries" (Topology.name topo)
               spec.embed_tries);
        ]
      | Some embedding ->
        let embedding = Embedding.trim ~problem ~hardware embedding in
        let recommended = Chain.default_strength q in
        let bound = Chain.max_local_field q in
        let strength = Option.value spec.strength ~default:recommended in
        let summary =
          finding Analyze.Info "embedding" Analyze.Global
            (Printf.sprintf "embeds into %s: %d/%d qubits, max chain %d, chain strength %g"
               (Topology.name topo)
               (Embedding.total_qubits_used embedding)
               (Topology.num_qubits topo)
               (Embedding.max_chain_length embedding)
               strength)
        in
        let strength_findings =
          if (not (Float.is_finite strength)) || strength <= 0. then
            [
              finding Analyze.Error "chain-strength" Analyze.Global
                (Printf.sprintf "chain strength %g is not a positive finite value" strength);
            ]
          else if strength < recommended then
            [
              finding Analyze.Warning "chain-strength" Analyze.Global
                (Printf.sprintf
                   "chain strength %g is below the recommended %g (2 x max|Q|): chains break in \
                    practice and the hardware sampler's escalation loop would have to rescue \
                    this setting"
                   strength recommended);
            ]
          else if strength < bound then
            [
              finding Analyze.Info "chain-strength-bound" Analyze.Global
                (Printf.sprintf
                   "chain strength %g is below the worst-case no-break bound %g (max local \
                    field): ground-state chain breaks are unlikely but not excluded"
                   strength bound);
            ]
          else []
        in
        let precision_findings =
          if (not (Float.is_finite strength)) || strength <= 0. then []
          else
            Chain.embed_qubo q ~embedding ~hardware ~chain_strength:strength
            |> Analyze.check_dynamic_range ~config:config.analyze
            |> List.map (fun f ->
                   {
                     f with
                     Analyze.check = "chain-dynamic-range";
                     message = "after embedding: " ^ f.Analyze.message;
                   })
        in
        (summary :: strength_findings) @ precision_findings
    end
  end

(* ------------------------------------------------------------------ *)
(* drivers *)

let order_findings findings =
  (* Most severe first; List.stable_sort keeps check order within a
     severity, so output is deterministic. *)
  List.stable_sort
    (fun a b ->
      compare
        (Analyze.severity_rank b.Analyze.severity)
        (Analyze.severity_rank a.Analyze.severity))
    findings

let record_telemetry telemetry findings =
  if Telemetry.enabled telemetry then
    List.iter
      (fun f ->
        Telemetry.count telemetry ("lint." ^ Analyze.severity_name f.Analyze.severity) 1;
        Telemetry.count telemetry ("lint.check." ^ f.Analyze.check) 1)
      findings

let lint_compiled ?(config = default_config) ?(overwrites = []) ?(telemetry = Telemetry.null)
    constr q =
  let structural = Analyze.structural ~config:config.analyze ~overwrites q in
  let expected_vars = Constr.num_vars constr in
  let mismatch = Qubo.num_vars q <> expected_vars in
  let oracle =
    if mismatch then
      [
        finding Analyze.Error "variable-count-mismatch" Analyze.Global
          (Printf.sprintf "QUBO has %d variables but the constraint decodes %d" (Qubo.num_vars q)
             expected_vars);
      ]
    else if config.soundness then soundness_findings config constr q
    else []
  in
  let chain =
    match config.chain with
    | Some spec when not mismatch -> chain_findings config spec q
    | _ -> []
  in
  let findings = order_findings (structural @ oracle @ chain) in
  record_telemetry telemetry findings;
  findings

let lint ?(config = default_config) ?params ?telemetry constr =
  let q, overwrites = Qubo.with_overwrite_log (fun () -> Compile.to_qubo ?params constr) in
  lint_compiled ~config ~overwrites ?telemetry constr q

(* ------------------------------------------------------------------ *)
(* pre-sample gate *)

type gate = [ `Off | `Error | `Warning ]

exception Rejected of Constr.t * finding list

let gate_check ?(config = default_config) ?(telemetry = Telemetry.null) ~gate constr q =
  match gate with
  | `Off -> ()
  | (`Error | `Warning) as level ->
    let findings = lint_compiled ~config ~telemetry constr q in
    let threshold =
      match level with `Error -> Analyze.severity_rank Analyze.Error | `Warning -> Analyze.severity_rank Analyze.Warning
    in
    let triggered =
      List.exists (fun f -> Analyze.severity_rank f.Analyze.severity >= threshold) findings
    in
    if triggered then begin
      Telemetry.count telemetry "lint.rejected" 1;
      raise (Rejected (constr, findings))
    end

(* ------------------------------------------------------------------ *)
(* rendering *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let location_to_json = function
  | Analyze.Global -> {|{"kind":"global"}|}
  | Analyze.Var i -> Printf.sprintf {|{"kind":"var","i":%d}|} i
  | Analyze.Coupler (i, j) -> Printf.sprintf {|{"kind":"coupler","i":%d,"j":%d}|} i j

let finding_to_json f =
  Printf.sprintf {|{"severity":"%s","check":"%s","location":%s,"message":"%s"}|}
    (Analyze.severity_name f.Analyze.severity)
    (json_escape f.Analyze.check)
    (location_to_json f.Analyze.location)
    (json_escape f.Analyze.message)
