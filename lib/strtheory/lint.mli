(** Static encoding linter — the constraint-aware half of the gate.

    {!Qsmt_qubo.Analyze} checks what a matrix alone can reveal; this
    module adds the paper's semantics. For every compiled constraint it
    can decide — post-{!Qsmt_qubo.Preprocess} residual small enough to
    enumerate — it verifies the central soundness contract statically:
    the QUBO's ground-state set must decode (via {!Compile.decode})
    exactly onto assignments the classical oracle ({!Constr.verify})
    accepts. On top of that it measures the penalty gap separating
    satisfying from violating assignments, flags shallow soft-bias
    excitations (the known non-dyadic [soft_scale = 0.1] indexOf
    wobble), and — given a hardware topology — judges chain-strength
    adequacy against {!Qsmt_anneal.Chain.default_strength} and the
    max-local-field bound, all without ever running a sampler.

    Severity semantics:
    - [Error] — the encoding is unsound (a ground state decodes to a
      violating value, a coefficient is non-finite, the problem does not
      embed): sampling cannot return a trustworthy answer.
    - [Warning] — the encoding is fragile (gap below threshold, chain
      strength below the recommended default, dynamic range beyond
      analog precision): correct under ideal conditions, at risk on
      hardware.
    - [Info] — structure worth knowing (dead variables, overwrite
      collisions, preprocessing headroom, skipped enumeration).

    [qsmt lint] surfaces these on the command line; {!Solver} can run
    them as a pre-sample gate. *)

type finding = Qsmt_qubo.Analyze.finding
type severity = Qsmt_qubo.Analyze.severity

(** {1 Configuration} *)

type chain_spec = {
  kind : Qsmt_anneal.Hardware.topology_kind;
  size : int;
      (** grid parameter (chimera m / king side / complete qubit count);
          [0] auto-sizes via {!Qsmt_anneal.Hardware.auto_topology} *)
  strength : float option;
      (** chain strength under test; [None] uses
          {!Qsmt_anneal.Chain.default_strength} of the logical problem *)
  embed_seed : int;
  embed_tries : int;
}

val chain_spec : ?size:int -> ?strength:float -> ?seed:int -> ?tries:int ->
  Qsmt_anneal.Hardware.topology_kind -> chain_spec
(** Defaults: [size 0] (auto), [strength None], [seed 0], [tries 16]. *)

type config = {
  analyze : Qsmt_qubo.Analyze.config;
  soundness : bool;
      (** run the exhaustive ground-set-vs-oracle check (default true) *)
  chain : chain_spec option;  (** chain-strength adequacy (default off) *)
}

val default_config : config

(** {1 Linting} *)

val lint_compiled :
  ?config:config ->
  ?overwrites:Qsmt_qubo.Qubo.overwrite list ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  Constr.t ->
  Qsmt_qubo.Qubo.t ->
  finding list
(** Lints a constraint together with an already-compiled (possibly
    mutated — that is the point of taking both) QUBO: structural checks,
    then soundness / gap / shallow-excitation against the oracle, then
    chain adequacy when configured. Findings are ordered
    most-severe-first, stable within a severity. [telemetry] bumps one
    [lint.<severity>] counter per finding plus [lint.check.<tag>]
    counters. A variable-count mismatch between constraint and QUBO is
    itself an [Error] finding (and skips the oracle checks). *)

val lint :
  ?config:config ->
  ?params:Params.t ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  Constr.t ->
  finding list
(** Compiles the constraint (recording builder overwrite collisions via
    {!Qsmt_qubo.Qubo.with_overwrite_log}) and runs {!lint_compiled}.
    @raise Invalid_argument if the constraint fails {!Constr.validate}. *)

(** {1 Pre-sample gate} *)

type gate = [ `Off | `Error | `Warning ]
(** Reject threshold: [`Warning] rejects on warnings {e or} errors. *)

exception Rejected of Constr.t * finding list
(** Raised by the gate; carries every finding (not only the triggering
    ones) so callers can print the full report. *)

val gate_check :
  ?config:config ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  gate:gate ->
  Constr.t ->
  Qsmt_qubo.Qubo.t ->
  unit
(** No-op at [`Off]; otherwise runs {!lint_compiled} and raises
    {!Rejected} when any finding reaches the gate severity. Bumps a
    [lint.rejected] counter on rejection. *)

(** {1 Rendering} *)

val finding_to_json : finding -> string
(** One-line JSON object:
    [{"severity":…,"check":…,"location":{…},"message":…}]. *)

val json_escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)
