module Qubo = Qsmt_qubo.Qubo
module Ascii7 = Qsmt_util.Ascii7
module Sampleset = Qsmt_anneal.Sampleset
module Sampler = Qsmt_anneal.Sampler

let ( let* ) = Result.bind

let compatible c =
  match c with
  | Constr.Includes _ -> None
  | Constr.Equals _ | Constr.Concat _ | Constr.Contains _ | Constr.Index_of _
  | Constr.Has_length _ | Constr.Replace_all _ | Constr.Replace_first _ | Constr.Reverse _
  | Constr.Palindrome _ | Constr.Regex _ -> begin
    match Constr.validate c with Ok () -> Some (Constr.num_vars c / 7) | Error _ -> None
  end

let common_length cs =
  match cs with
  | [] -> Error "Joint.encode: empty conjunction"
  | first :: rest -> begin
    match compatible first with
    | None -> Error ("not joint-encodable: " ^ Constr.describe first)
    | Some len ->
      List.fold_left
        (fun acc c ->
          let* len = acc in
          match compatible c with
          | Some l when l = len -> Ok len
          | Some l ->
            Error
              (Printf.sprintf "length mismatch: %s has length %d, expected %d"
                 (Constr.describe c) l len)
          | None -> Error ("not joint-encodable: " ^ Constr.describe c))
        (Ok len) rest
  end

(* The one true merge fold. The incremental solver re-merges cached
   per-conjunct QUBOs through this exact function, so its result is
   bit-exact equal to a full recompile by construction — float additions
   happen in the same order, per coefficient slot. *)
let merge_frozen ~num_vars parts =
  let merged = Qubo.builder () in
  List.iter
    (fun q ->
      Qubo.iter_linear q (fun i v -> Qubo.add merged i i v);
      Qubo.iter_quadratic q (fun i j v -> Qubo.add merged i j v);
      Qubo.add_offset merged (Qubo.offset q))
    parts;
  Qubo.freeze ~num_vars merged

let encode ?params cs =
  let* length = common_length cs in
  let parts = List.map (fun c -> Compile.to_qubo ?params c) cs in
  Ok (merge_frozen ~num_vars:(7 * length) parts, length)

type outcome = {
  qubo : Qubo.t;
  samples : Sampleset.t;
  value : string;
  satisfied : bool;
  per_constraint : (Constr.t * bool) list;
}

let verdicts cs s = List.map (fun c -> (c, Constr.verify c (Constr.Str s))) cs

let solve ?params ?sampler ?telemetry cs =
  let sampler =
    match sampler with Some s -> s | None -> Solver.default_sampler ~seed:0
  in
  let* qubo, _length = encode ?params cs in
  let samples = Sampler.run ?telemetry sampler qubo in
  let decoded =
    List.map (fun e -> Ascii7.decode e.Sampleset.bits) (Sampleset.entries samples)
  in
  match decoded with
  | [] -> Error "sampler returned an empty sample set"
  | first :: _ -> begin
    let all_ok s = List.for_all (fun c -> Constr.verify c (Constr.Str s)) cs in
    match List.find_opt all_ok decoded with
    | Some s ->
      Ok { qubo; samples; value = s; satisfied = true; per_constraint = verdicts cs s }
    | None ->
      Ok { qubo; samples; value = first; satisfied = false; per_constraint = verdicts cs first }
  end
