module Qubo = Qsmt_qubo.Qubo
module Ascii7 = Qsmt_util.Ascii7
module Sampleset = Qsmt_anneal.Sampleset
module Sampler = Qsmt_anneal.Sampler

let ( let* ) = Result.bind

let compatible c =
  match c with
  | Constr.Includes _ -> None
  | Constr.Equals _ | Constr.Concat _ | Constr.Contains _ | Constr.Index_of _
  | Constr.Has_length _ | Constr.Replace_all _ | Constr.Replace_first _ | Constr.Reverse _
  | Constr.Palindrome _ | Constr.Regex _ -> begin
    match Constr.validate c with Ok () -> Some (Constr.num_vars c / 7) | Error _ -> None
  end

let common_length cs =
  match cs with
  | [] -> Error "Joint.encode: empty conjunction"
  | first :: rest -> begin
    match compatible first with
    | None -> Error ("not joint-encodable: " ^ Constr.describe first)
    | Some len ->
      List.fold_left
        (fun acc c ->
          let* len = acc in
          match compatible c with
          | Some l when l = len -> Ok len
          | Some l ->
            Error
              (Printf.sprintf "length mismatch: %s has length %d, expected %d"
                 (Constr.describe c) l len)
          | None -> Error ("not joint-encodable: " ^ Constr.describe c))
        (Ok len) rest
  end

(* The one true merge fold. The incremental solver re-merges cached
   per-conjunct QUBOs through this exact function, so its result is
   bit-exact equal to a full recompile by construction — float additions
   happen in the same order, per coefficient slot. *)
let merge_frozen ~num_vars parts =
  let merged = Qubo.builder () in
  List.iter
    (fun q ->
      Qubo.iter_linear q (fun i v -> Qubo.add merged i i v);
      Qubo.iter_quadratic q (fun i j v -> Qubo.add merged i j v);
      Qubo.add_offset merged (Qubo.offset q))
    parts;
  Qubo.freeze ~num_vars merged

let encode ?params cs =
  let* length = common_length cs in
  let parts = List.map (fun c -> Compile.to_qubo ?params c) cs in
  Ok (merge_frozen ~num_vars:(7 * length) parts, length)

type outcome = {
  qubo : Qubo.t;
  samples : Sampleset.t;
  value : string;
  satisfied : bool;
  per_constraint : (Constr.t * bool) list;
  decided : Absint.analysis option;
}

let verdicts cs s = List.map (fun c -> (c, Constr.verify c (Constr.Str s))) cs

(* Static outcomes carry an empty placeholder QUBO over the right
   variable count and an empty sample set: no encoding was merged, no
   sampler ran, zero reads. *)
let static_outcome cs ~num_vars ~analysis verdict =
  let qubo = Qubo.freeze ~num_vars (Qubo.builder ()) in
  match verdict with
  | Absint.V_sat (Constr.Str s) ->
    {
      qubo;
      samples = Sampleset.empty;
      value = s;
      satisfied = true;
      per_constraint = verdicts cs s;
      decided = Some analysis;
    }
  | _ ->
    (* unsat: no value exists; every conjunct is reported unsatisfied *)
    {
      qubo;
      samples = Sampleset.empty;
      value = "";
      satisfied = false;
      per_constraint = List.map (fun c -> (c, false)) cs;
      decided = Some analysis;
    }

let solve ?params ?sampler ?(absint = `On) ?(telemetry = Qsmt_util.Telemetry.null) cs =
  let sampler =
    match sampler with Some s -> s | None -> Solver.default_sampler ~seed:0
  in
  let* length = common_length cs in
  let analysis =
    match absint with
    | `Off -> None
    | `On -> (
      match Absint.analyze cs with
      | Ok a ->
        Absint.emit telemetry a;
        Some a
      | Error _ -> None)
  in
  match analysis with
  | Some ({ Absint.verdict = (Absint.V_sat _ | Absint.V_unsat _) as verdict; _ } as a) ->
    Ok (static_outcome cs ~num_vars:(7 * length) ~analysis:a verdict)
  | None | Some { Absint.verdict = Absint.V_undecided; _ } -> (
    let* qubo, _length = encode ?params cs in
    let all_ok s = List.for_all (fun c -> Constr.verify c (Constr.Str s)) cs in
    let samples =
      match Option.map Absint.forced_bits analysis with
      | None | Some [] -> Sampler.run ~telemetry sampler qubo
      | Some forced ->
        Qsmt_util.Telemetry.count telemetry "absint.shrunk" 1;
        let red = Qsmt_qubo.Preprocess.clamp qubo forced in
        if Qsmt_qubo.Preprocess.num_free red = 0 then
          Sampleset.of_bits qubo
            [ Qsmt_qubo.Preprocess.expand red (Qsmt_util.Bitvec.create 0) ]
        else
          let verify bits =
            all_ok (Ascii7.decode (Qsmt_qubo.Preprocess.expand red bits))
          in
          Solver.lift_samples ~qubo red
            (Sampler.run ~verify ~telemetry sampler (Qsmt_qubo.Preprocess.residual red))
    in
    let decoded =
      List.map (fun e -> Ascii7.decode e.Sampleset.bits) (Sampleset.entries samples)
    in
    match decoded with
    | [] -> Error "sampler returned an empty sample set"
    | first :: _ -> begin
      match List.find_opt all_ok decoded with
      | Some s ->
        Ok
          {
            qubo;
            samples;
            value = s;
            satisfied = true;
            per_constraint = verdicts cs s;
            decided = None;
          }
      | None ->
        Ok
          {
            qubo;
            samples;
            value = first;
            satisfied = false;
            per_constraint = verdicts cs first;
            decided = None;
          }
    end)
