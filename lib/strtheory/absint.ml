module Charset = Qsmt_regex.Charset
module Dfa = Qsmt_regex.Dfa
module Analyze = Qsmt_qubo.Analyze
module Telemetry = Qsmt_util.Telemetry

type gate = [ `On | `Off ]

type verdict = V_sat of Constr.value | V_unsat of string | V_undecided

type analysis = {
  length : int;
  doms : Charset.t array;
  iterations : int;
  facts : int;
  widened : bool;
  verdict : verdict;
}

let default_max_iters = 64

(* ------------------------------------------------------------------ *)
(* Abstract state: per-position domains + equality congruence          *)

type st = {
  st_doms : Charset.t array;
  (* union-find over positions; palindrome mirrors are the only merge
     source today, but the closure is generic *)
  parent : int array;
  mutable st_facts : int;
  mutable changed : bool;
  mutable contradiction : string option;
}

let rec find st i = if st.parent.(i) = i then i else find st st.parent.(i)

let union st i j =
  let ri = find st i and rj = find st j in
  if ri <> rj then begin
    st.parent.(max ri rj) <- min ri rj;
    st.st_facts <- st.st_facts + 1
  end

(* Meet [set] into position [i]'s domain, recording narrowing facts and
   the first contradiction. Every transfer function funnels through
   here, which is what makes the fixpoint loop's change detection and
   the soundness argument local: a character is only ever removed when
   the caller proved no satisfying string can place it at [i]. *)
let meet st i set =
  let cur = st.st_doms.(i) in
  let next = Charset.inter cur set in
  if not (Charset.equal next cur) then begin
    st.st_doms.(i) <- next;
    st.st_facts <- st.st_facts + 1;
    st.changed <- true;
    if Charset.is_empty next && st.contradiction = None then
      st.contradiction <-
        Some (Printf.sprintf "position %d has an empty character domain" i)
  end

let meet_literal st s = String.iteri (fun i c -> meet st i (Charset.singleton c)) s

(* Propagate domain meets across congruence classes: congruent
   positions hold the same character in any satisfying string, so each
   class shares the meet of its members' domains. *)
let congruence st =
  let l = Array.length st.st_doms in
  let class_meet = Hashtbl.create 8 in
  for i = 0 to l - 1 do
    let r = find st i in
    let acc =
      match Hashtbl.find_opt class_meet r with
      | Some s -> Charset.inter s st.st_doms.(i)
      | None -> st.st_doms.(i)
    in
    Hashtbl.replace class_meet r acc
  done;
  for i = 0 to l - 1 do
    meet st i (Hashtbl.find class_meet (find st i))
  done

(* ------------------------------------------------------------------ *)
(* Transfer functions (one closure per conjunct, re-run to fixpoint)   *)

(* §4.3 placement feasibility: a satisfying string has [sub] at some
   start position, and that occurrence's characters are members of the
   current domains — so placements contradicting the domains can never
   be the occurrence. A position covered by *every* surviving placement
   must hold one of the characters the placements put there; no
   surviving placement at all is a contradiction. *)
let step_contains ~length ~sub st =
  let m = String.length sub in
  if m > 0 then begin
    let feasible p =
      let ok = ref true in
      for j = 0 to m - 1 do
        if not (Charset.mem sub.[j] st.st_doms.(p + j)) then ok := false
      done;
      !ok
    in
    let ps = ref [] in
    for p = length - m downto 0 do
      if feasible p then ps := p :: !ps
    done;
    match !ps with
    | [] ->
      if st.contradiction = None then
        st.contradiction <-
          Some
            (Printf.sprintf "no feasible placement left for substring %S in %d characters"
               sub length)
    | ps ->
      for i = 0 to length - 1 do
        if List.for_all (fun p -> p <= i && i < p + m) ps then
          meet st i
            (List.fold_left (fun acc p -> Charset.add sub.[i - p] acc) Charset.empty ps)
      done
  end

(* §4.11 per-position reachability over the DFA, restricted to the
   current domains: forward sets from the start state, backward sets
   from the accepting states, and a character survives at position [i]
   only if some transition on it connects the two. Sound because any
   satisfying string's run visits exactly such state pairs; iterative
   because narrowing one position's domain prunes transitions
   everywhere else on the next pass. *)
let step_regex ~length ~dfa st =
  let n = Dfa.num_states dfa in
  let fwd = Array.init (length + 1) (fun _ -> Array.make n false) in
  fwd.(0).(Dfa.start_state dfa) <- true;
  for i = 0 to length - 1 do
    for s = 0 to n - 1 do
      if fwd.(i).(s) then
        Charset.iter
          (fun c ->
            match Dfa.transition dfa s c with
            | Some t -> fwd.(i + 1).(t) <- true
            | None -> ())
          st.st_doms.(i)
    done
  done;
  let bwd = Array.init (length + 1) (fun _ -> Array.make n false) in
  for s = 0 to n - 1 do
    bwd.(length).(s) <- Dfa.is_accepting dfa s
  done;
  for i = length - 1 downto 0 do
    for s = 0 to n - 1 do
      let reach = ref false in
      Charset.iter
        (fun c ->
          match Dfa.transition dfa s c with
          | Some t -> if bwd.(i + 1).(t) then reach := true
          | None -> ())
        st.st_doms.(i);
      bwd.(i).(s) <- !reach
    done
  done;
  for i = 0 to length - 1 do
    let keep = ref Charset.empty in
    Charset.iter
      (fun c ->
        let alive = ref false in
        for s = 0 to n - 1 do
          if fwd.(i).(s) then
            match Dfa.transition dfa s c with
            | Some t -> if bwd.(i + 1).(t) then alive := true
            | None -> ()
        done;
        if !alive then keep := Charset.add c !keep)
      st.st_doms.(i);
    meet st i !keep
  done

(* The fully-determined operations pin every position to a literal. *)
let literal_of = function
  | Constr.Equals s -> Some s
  | Constr.Concat parts -> Some (Semantics.concat parts)
  | Constr.Reverse s -> Some (Semantics.reverse s)
  | Constr.Replace_all { source; find; replace } ->
    Some (Semantics.replace_all source ~find ~replace)
  | Constr.Replace_first { source; find; replace } ->
    Some (Semantics.replace_first source ~find ~replace)
  | Constr.Has_length { num_chars; target_length } ->
    (* paper bit semantics: the first [target_length] characters decode
       as all-ones ('\127'), the rest as all-zeroes ('\000') *)
    Some (String.init num_chars (fun i -> if i < target_length then '\127' else '\000'))
  | _ -> None

let step_of ~length c =
  match literal_of c with
  | Some s -> fun st -> meet_literal st s
  | None -> (
    match c with
    | Constr.Index_of { substring; index; _ } ->
      fun st ->
        String.iteri (fun j ch -> meet st (index + j) (Charset.singleton ch)) substring
    | Constr.Contains { substring; _ } -> step_contains ~length ~sub:substring
    | Constr.Palindrome _ ->
      (* the merges are made once, before the loop; the per-iteration
         work is the shared [congruence] propagation *)
      fun _ -> ()
    | Constr.Regex { pattern; _ } ->
      let dfa = Dfa.of_syntax pattern in
      step_regex ~length ~dfa
    | Constr.Equals _ | Constr.Concat _ | Constr.Reverse _ | Constr.Replace_all _
    | Constr.Replace_first _ | Constr.Has_length _ | Constr.Includes _ ->
      fun _ -> ())

(* ------------------------------------------------------------------ *)
(* The analysis                                                        *)

let ( let* ) = Result.bind

let gen_length c =
  let* () = Constr.validate c in
  match c with
  | Constr.Includes _ -> Error ("not analyzable in a conjunction: " ^ Constr.describe c)
  | _ -> Ok (Constr.num_vars c / 7)

let decide_includes ~haystack ~needle =
  match Semantics.index_of haystack ~sub:needle with
  | Some i -> V_sat (Constr.Pos (Some i))
  | None ->
    V_unsat (Printf.sprintf "needle %S never occurs in haystack %S" needle haystack)

let verdict_of st cs =
  match st.contradiction with
  | Some reason -> V_unsat reason
  | None ->
    if Array.for_all (fun d -> Charset.cardinal d = 1) st.st_doms then begin
      let candidate =
        String.init (Array.length st.st_doms) (fun i ->
            match Charset.choose st.st_doms.(i) with Some c -> c | None -> assert false)
      in
      match
        List.find_opt (fun c -> not (Constr.verify c (Constr.Str candidate))) cs
      with
      | None -> V_sat (Constr.Str candidate)
      | Some c ->
        V_unsat
          (Format.asprintf "unique candidate %a fails %s" Constr.pp_value
             (Constr.Str candidate) (Constr.describe c))
    end
    else V_undecided

let analyze ?(max_iters = default_max_iters) cs =
  match cs with
  | [] -> Error "Absint.analyze: empty conjunction"
  | [ Constr.Includes { haystack; needle } ] ->
    let* () = Constr.validate (Constr.Includes { haystack; needle }) in
    Ok
      {
        length = String.length haystack;
        doms = [||];
        iterations = 1;
        facts = 1;
        widened = false;
        verdict = decide_includes ~haystack ~needle;
      }
  | first :: rest ->
    let* length = gen_length first in
    let* mismatch =
      List.fold_left
        (fun acc c ->
          let* acc = acc in
          let* l = gen_length c in
          if acc <> None || l = length then Ok acc
          else
            Ok
              (Some
                 (Printf.sprintf "length mismatch: %s has length %d, expected %d"
                    (Constr.describe c) l length)))
        (Ok None) rest
    in
    (match mismatch with
    | Some reason ->
      (* disjoint lengths on one string variable: statically unsat *)
      Ok
        {
          length;
          doms = [||];
          iterations = 1;
          facts = 1;
          widened = false;
          verdict = V_unsat reason;
        }
    | None ->
      let st =
        {
          st_doms = Array.make length Charset.full;
          parent = Array.init length (fun i -> i);
          st_facts = 0;
          changed = true;
          contradiction = None;
        }
      in
      List.iter
        (function
          | Constr.Palindrome { length = l } ->
            for i = 0 to (l / 2) - 1 do
              union st i (l - 1 - i)
            done
          | _ -> ())
        cs;
      let steps = List.map (step_of ~length) cs in
      let iters = ref 0 in
      while st.changed && st.contradiction = None && !iters < max_iters do
        st.changed <- false;
        incr iters;
        List.iter (fun step -> step st) steps;
        if st.contradiction = None && length > 0 then congruence st
      done;
      let widened = st.changed && st.contradiction = None in
      Ok
        {
          length;
          doms = st.st_doms;
          iterations = !iters;
          facts = st.st_facts;
          widened;
          verdict = verdict_of st cs;
        })

(* ------------------------------------------------------------------ *)
(* Consumers: forced bits, findings, telemetry, rendering              *)

let char_bit c k = (Char.code c lsr (6 - k)) land 1

let forced_bits a =
  let acc = ref [] in
  for i = Array.length a.doms - 1 downto 0 do
    let dom = a.doms.(i) in
    if not (Charset.is_empty dom) then
      match Charset.choose dom with
      | None -> ()
      | Some c0 ->
        for k = 6 downto 0 do
          let b = char_bit c0 k in
          if Charset.for_all (fun c -> char_bit c k = b) dom then
            acc := ((7 * i) + k, b = 1) :: !acc
        done
  done;
  !acc

let num_fixed_positions a =
  Array.fold_left (fun n d -> if Charset.cardinal d = 1 then n + 1 else n) 0 a.doms

let candidate a =
  if Array.length a.doms > 0 && Array.for_all (fun d -> Charset.cardinal d = 1) a.doms
  then
    Some
      (String.init (Array.length a.doms) (fun i ->
           match Charset.choose a.doms.(i) with Some c -> c | None -> assert false))
  else None

let findings a =
  match a.verdict with
  | V_unsat reason ->
    [
      {
        Analyze.severity = Analyze.Error;
        check = "absint-unsat";
        location = Analyze.Global;
        message = "statically unsatisfiable: " ^ reason;
      };
    ]
  | V_sat value ->
    [
      {
        Analyze.severity = Analyze.Info;
        check = "absint-sat";
        location = Analyze.Global;
        message =
          Format.asprintf "statically determined and verified: %a" Constr.pp_value value;
      };
    ]
  | V_undecided ->
    let forced = List.length (forced_bits a) in
    let shrink =
      if forced > 0 then
        [
          {
            Analyze.severity = Analyze.Info;
            check = "absint-shrink";
            location = Analyze.Global;
            message =
              Printf.sprintf "%d of %d codec bits statically forced (%d positions fixed)"
                forced
                (7 * Array.length a.doms)
                (num_fixed_positions a);
          };
        ]
      else []
    in
    let widened =
      if a.widened then
        [
          {
            Analyze.severity = Analyze.Info;
            check = "absint-widened";
            location = Analyze.Global;
            message =
              Printf.sprintf "fixpoint stopped by the %d-iteration widening cap" a.iterations;
          };
        ]
      else []
    in
    shrink @ widened

let emit telemetry a =
  if Telemetry.enabled telemetry then begin
    Telemetry.count telemetry "absint.runs" 1;
    Telemetry.count telemetry "absint.fixpoint_iters" a.iterations;
    Telemetry.count telemetry "absint.facts" a.facts;
    Telemetry.count telemetry "absint.positions_fixed" (num_fixed_positions a);
    let verdict_name =
      match a.verdict with
      | V_sat _ ->
        Telemetry.count telemetry "absint.static_sat" 1;
        "sat"
      | V_unsat _ ->
        Telemetry.count telemetry "absint.static_unsat" 1;
        "unsat"
      | V_undecided ->
        Telemetry.count telemetry "absint.bits_forced" (List.length (forced_bits a));
        "undecided"
    in
    Telemetry.emit telemetry "absint.done"
      [
        ("verdict", Telemetry.Str verdict_name);
        ("iterations", Telemetry.Int a.iterations);
        ("facts", Telemetry.Int a.facts);
        ("length", Telemetry.Int a.length);
      ]
  end

let pp ppf a =
  let verdict_s =
    match a.verdict with
    | V_sat v -> Format.asprintf "sat (%a)" Constr.pp_value v
    | V_unsat reason -> "unsat (" ^ reason ^ ")"
    | V_undecided -> "undecided"
  in
  let lines = ref [] in
  let add fmt = Format.kasprintf (fun s -> lines := s :: !lines) fmt in
  add "verdict   : %s" verdict_s;
  add "length    : %d chars" a.length;
  add "fixpoint  : %d iterations, %d facts%s" a.iterations a.facts
    (if a.widened then " (widened)" else "");
  if Array.length a.doms > 0 then begin
    add "positions : %d of %d fixed, %d of %d bits forced" (num_fixed_positions a)
      (Array.length a.doms)
      (List.length (forced_bits a))
      (7 * Array.length a.doms);
    Array.iteri
      (fun i dom ->
        (* full domains carry no information; keep the dump readable *)
        if not (Charset.equal dom Charset.full) then add "  pos %d: %a" i Charset.pp dom)
      a.doms
  end;
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Format.pp_print_string)
    (List.rev !lines)
