(** Incremental solving: cached encodings, delta-patched QUBOs,
    warm-started anneals.

    The SMT-LIB front end's [push]/[pop]/[check-sat-assuming] produce
    sequences of closely related queries; solving each from scratch
    re-encodes, re-merges, and re-anneals everything. A session value of
    this module amortizes that work across queries, in the spirit of
    Bian et al.'s incremental embedding reuse (arXiv:1811.02524):

    - {b per-conjunct encoding cache} — each {!Constr.t} compiles (and
      passes the lint gate) once; [Constr.t] is structural, so the cache
      keys on the constraint itself;
    - {b delta-patched merge} — when a joint query extends the previous
      conjunct list, the new parts are coefficient-patched onto the
      previous merged QUBO ({!Qsmt_qubo.Qubo.patch_parts}) instead of
      rebuilding; a matrix-level lint re-check runs on the patched
      encoding. Any other change re-merges from cached parts through
      {!Joint.merge_frozen}. All paths are bit-exact equal to a full
      recompile — the embedding cache downstream keys on the interaction
      graph, which patching never changes;
    - {b warm starts} — samplers seed their first read from the previous
      best assignment (reverse-anneal style, [?init]) and may early-exit
      on the first verified read; a warm run that fails to verify
      retries the exact cold configuration, so incremental verdicts are
      never worse than from-scratch ones;
    - {b model reuse} — when the previous satisfying string still
      verifies against the new constraints (the [pop] case), sampling is
      skipped entirely.

    Telemetry counters: [incr.encode_hit], [incr.cache_hit],
    [incr.patched], [incr.patched_coeffs], [incr.remerged],
    [incr.warm_start], [incr.model_reuse], [incr.cold_retry]. *)

type t
(** An incremental solving session. Not domain-safe: one session per
    interpreter. *)

val create :
  ?params:Params.t ->
  ?sampler:Qsmt_anneal.Sampler.t ->
  ?lint:Lint.gate ->
  ?lint_config:Lint.config ->
  ?absint:Absint.gate ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  unit ->
  t
(** The sampler defaults to {!Solver.default_sampler}[ ~seed:0]; the
    lint gate (default [`Off]) vets each conjunct encoding once at cache
    insertion and re-checks patched merges at the matrix level, raising
    {!Lint.Rejected} like {!Solver.solve} does.

    [absint] (default [`On]) re-runs {!Absint.analyze} on every query —
    push/pop deltas change the conjunct list, and the pass is cheaper
    than even an encode-cache hit. Statically-decided queries return
    without touching the caches, the pool, or the warm state (their
    outcomes carry [decided = Some _] and zero sampler reads); undecided
    queries anneal a residual with the statically-forced codec bits
    clamped, with warm-start seeds projected onto it. [`Off] replays
    today's pipeline bit-exactly. *)

val reset : t -> unit
(** Drops every cache (encodings, merged QUBO, warm state). *)

val solve_generate : t -> Constr.t -> Solver.outcome
(** Incremental counterpart of {!Solver.solve}: same outcome, but the
    encoding comes from the cache when the constraint was seen before,
    the sampler is warm-started from the previous best assignment when
    the problem size matches, and a still-valid previous model
    short-circuits sampling. *)

val solve_joint : t -> Constr.t list -> (Joint.outcome, string) result
(** Incremental counterpart of {!Joint.solve} for conjunctions in
    canonical conjunct order. The merged QUBO is delta-patched when the
    list extends the previous query's, re-merged from cached parts
    otherwise; either way it is bit-exact equal to what {!Joint.encode}
    would build. *)
