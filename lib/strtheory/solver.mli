(** The quantum-annealing string solver (Figure 1 end to end).

    Encode the constraint to QUBO, hand it to a sampler, decode samples
    back to values, verify classically. The returned {!outcome} keeps
    every intermediate artifact so callers (CLI, benches, tests) can
    inspect the pipeline the way the paper's Table 1 presents it:
    constraint → matrix → output. *)

type outcome = {
  constr : Constr.t;
  qubo : Qsmt_qubo.Qubo.t;
  samples : Qsmt_anneal.Sampleset.t;
  value : Constr.value;  (** see [solve] for how it is chosen *)
  satisfied : bool;  (** [Constr.verify constr value] *)
  energy : float;  (** energy of the sample behind [value] *)
  hardware : Qsmt_anneal.Hardware.stats option;
      (** chain/embedding diagnostics — qubits used, chain-break
          fraction, embedding-cache hit, degradation — when the sampler
          went through the hardware-emulation path; [None] for
          all-to-all samplers *)
  decided : Absint.analysis option;
      (** [Some] iff the abstract interpreter decided the constraint
          statically ([V_sat]/[V_unsat]): [qubo] is then an empty
          placeholder, [samples] is {!Qsmt_anneal.Sampleset.empty} (zero
          reads — no sampler ran), and [energy] is [0.]. A [V_unsat]
          here is a proof, unlike an ordinary [satisfied = false]. *)
}

type stage_timing = {
  encode_s : float;  (** wall-clock seconds building the QUBO *)
  sample_s : float;
      (** annealing, raw wall time (includes any in-sampler verification
          a portfolio's early-exit callback performed) *)
  decode_s : float;
      (** the decode scan over the sample set, verification excluded *)
  verify_s : float;
      (** total verification work — the sampler's early-exit callbacks
          (decode + check, previously hidden inside [sample_s]) plus the
          checks of the decode scan, accumulated across domains *)
}

val default_sampler : seed:int -> Qsmt_anneal.Sampler.t
(** Simulated annealing, 32 reads × 1000 sweeps — the configuration the
    experiments use unless stated otherwise. *)

val lift_samples :
  qubo:Qsmt_qubo.Qubo.t ->
  Qsmt_qubo.Preprocess.t ->
  Qsmt_anneal.Sampleset.t ->
  Qsmt_anneal.Sampleset.t
(** Shared plumbing of the absint shrink path (also used by {!Joint} and
    {!Incremental}): expands every residual entry through
    {!Qsmt_qubo.Preprocess.expand} and recomputes its energy on the full
    [qubo], so shrunk solves report energies bit-identical to what an
    unshrunk solve would report for the same assignments. *)

val solve :
  ?params:Params.t ->
  ?sampler:Qsmt_anneal.Sampler.t ->
  ?lint:Lint.gate ->
  ?lint_config:Lint.config ->
  ?absint:Absint.gate ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  Constr.t ->
  outcome
(** Samples once and scans the sample set in ascending energy order for
    the first decoded value that verifies; if none verifies, the
    lowest-energy decode is returned with [satisfied = false]. The
    sampler defaults to [default_sampler ~seed:0].

    [lint] (default [`Off]) runs the static linter between encoding and
    sampling and raises {!Lint.Rejected} when any finding reaches the
    gate severity — no annealing time is spent on an encoding the linter
    can already prove broken. [lint_config] tunes the checks. *)

val solve_timed :
  ?params:Params.t ->
  ?sampler:Qsmt_anneal.Sampler.t ->
  ?lint:Lint.gate ->
  ?lint_config:Lint.config ->
  ?absint:Absint.gate ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  Constr.t ->
  outcome * stage_timing
(** {!solve} plus per-stage wall-clock timing (the Figure 1 trace).
    Passes the constraint verifier down to the sampler so portfolio
    samplers can early-exit on the first satisfying read. The lint gate
    (when on) runs inside the [solve] span as a [lint] child; its cost is
    not attributed to any of the four timing buckets.

    [telemetry] wraps the whole call in a [solve] span with [encode] /
    [sample] / [decode] children, shares the handle with the encoder (per
    operator counters) and the sampler (sweep streams, portfolio
    lifecycle), and emits one [solve.done] event (op, satisfied, energy,
    reads) plus a [solve.constraints] counter. Instrumentation never
    consumes PRNG values, so the outcome is identical with or without
    it. *)

val solve_batch :
  ?params:Params.t ->
  ?sampler:Qsmt_anneal.Sampler.t ->
  ?lint:Lint.gate ->
  ?lint_config:Lint.config ->
  ?absint:Absint.gate ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  ?jobs:int ->
  Constr.t list ->
  (outcome * stage_timing) list
(** Solves many independent constraints concurrently over the shared
    domain pool ([jobs <= 0], the default, means
    {!Qsmt_util.Parallel.recommended_domains}). Results are in input
    order, each with its own per-stage timings. Each solve is identical
    to a standalone {!solve_timed} call, so batching never changes
    results — only wall-clock. *)

type pipeline_error = {
  stage_index : int;
      (** 0 = the initial constraint, [i > 0] = the [i]-th stage *)
  blocking_value : Constr.value;  (** the non-string decode *)
  completed : outcome list;
      (** all outcomes solved before the run stopped, including the
          blocking one (always non-empty, the blocker last) *)
}
(** A pipeline stage needs the previous decode as its input string; a
    positional decode (from an [Includes] initial constraint) has no
    string form, so the run stops rather than silently feeding [""]
    forward — which is what earlier revisions did. *)

val solve_pipeline :
  ?params:Params.t ->
  ?sampler:Qsmt_anneal.Sampler.t ->
  ?lint:Lint.gate ->
  ?lint_config:Lint.config ->
  ?absint:Absint.gate ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  Pipeline.t ->
  (outcome list, pipeline_error) result
(** Runs the initial constraint, then each stage on the previous decoded
    string (§4.12). [Ok outcomes] lists them in stage order; a stage that
    merely fails to verify still yields its best-effort {e string} decode
    to the next stage (the [satisfied] flags record where things went
    wrong). [Error] is reserved for a non-string decode blocking a
    downstream stage; a non-string decode of the {e final} constraint is
    [Ok] (there is nothing downstream to block). *)

val pipeline_output : outcome list -> string option
(** Final decoded string of a pipeline run, [None] for an empty run or a
    non-string final value. *)
