module Qubo = Qsmt_qubo.Qubo
module Analyze = Qsmt_qubo.Analyze
module Ascii7 = Qsmt_util.Ascii7
module Bitvec = Qsmt_util.Bitvec
module Telemetry = Qsmt_util.Telemetry
module Sampleset = Qsmt_anneal.Sampleset
module Sampler = Qsmt_anneal.Sampler

let ( let* ) = Result.bind

type t = {
  params : Params.t option;
  sampler : Sampler.t;
  lint : Lint.gate;
  lint_config : Lint.config option;
  absint : Absint.gate;
  telemetry : Telemetry.t;
  (* Per-conjunct frozen encodings, gated once at insertion. [Constr.t]
     is a plain structural value, so it keys the table directly. *)
  encode_cache : (Constr.t, Qubo.t) Hashtbl.t;
  (* The last joint conjunction solved: conjuncts in canonical order and
     their merged QUBO. When the next query extends this list, the
     merged matrix is coefficient-patched instead of rebuilt. *)
  mutable merged : (Constr.t list * Qubo.t) option;
  (* Best assignment of the previous anneal, as (num_vars, bits) — the
     reverse-anneal seed for the next query of the same size. *)
  mutable warm : (int * Bitvec.t) option;
  (* The previous satisfying string: if it still verifies against the
     new conjuncts (the pop case — constraints only got weaker), no
     sampling is needed at all. *)
  mutable last_sat : string option;
}

let create ?params ?sampler ?(lint = `Off) ?lint_config ?(absint = `On)
    ?(telemetry = Telemetry.null) () =
  let sampler = match sampler with Some s -> s | None -> Solver.default_sampler ~seed:0 in
  {
    params;
    sampler;
    lint;
    lint_config;
    absint;
    telemetry;
    encode_cache = Hashtbl.create 16;
    merged = None;
    warm = None;
    last_sat = None;
  }

let reset t =
  Hashtbl.reset t.encode_cache;
  t.merged <- None;
  t.warm <- None;
  t.last_sat <- None

(* ------------------------------------------------------------------ *)
(* Pre-encode abstract interpretation. Re-run on every query — push/pop
   deltas change the conjunct list, and the analysis is far cheaper than
   even a cache hit on the encode path.                                *)

let analyze t cs =
  match t.absint with
  | `Off -> None
  | `On -> (
    match Absint.analyze cs with
    | Ok a ->
      Absint.emit t.telemetry a;
      Some a
    | Error _ -> None)

let forced_of = function Some a -> Absint.forced_bits a | None -> []

(* ------------------------------------------------------------------ *)
(* Encoding: per-conjunct cache, delta-patched merge                   *)

let encode_cached t constr =
  match Hashtbl.find_opt t.encode_cache constr with
  | Some q ->
    Telemetry.count t.telemetry "incr.encode_hit" 1;
    q
  | None ->
    let q = Compile.to_qubo ?params:t.params ~telemetry:t.telemetry constr in
    (* Gate each conjunct once, at insertion: everything later built
       from cached parts is a sum of individually-vetted encodings. *)
    (match t.lint with
    | `Off -> ()
    | (`Error | `Warning) as gate ->
      Lint.gate_check ?config:t.lint_config ~telemetry:t.telemetry ~gate constr q);
    Hashtbl.replace t.encode_cache constr q;
    q

(* Matrix-only re-check of a patched or re-merged conjunction QUBO.
   The constraint-aware lint ran per part in [encode_cached]; what can
   still go wrong in the sum is what a matrix alone reveals — non-finite
   entries, dynamic range blowing past analog precision. Rejections
   carry the first conjunct as the location anchor. *)
let gate_merged t cs qubo =
  match t.lint with
  | `Off -> ()
  | (`Error | `Warning) as gate ->
    let config =
      match t.lint_config with
      | Some c -> c.Lint.analyze
      | None -> Analyze.default_config
    in
    let findings = Analyze.check_finite qubo @ Analyze.check_dynamic_range ~config qubo in
    let threshold = match gate with `Error -> 2 | `Warning -> 1 in
    let rejected =
      List.exists (fun f -> Analyze.severity_rank f.Analyze.severity >= threshold) findings
    in
    if rejected then begin
      Telemetry.count t.telemetry "lint.rejected" 1;
      raise (Lint.Rejected (List.hd cs, findings))
    end

(* [i] is a strict prefix of [cs] -> Some suffix, else None. *)
let rec strict_prefix prev cs =
  match (prev, cs) with
  | [], [] -> None
  | [], suffix -> Some suffix
  | _, [] -> None
  | p :: prev, c :: cs -> if p = c then strict_prefix prev cs else None

(* The merged QUBO for [cs] (canonical conjunct order), with three
   tiers: exact cache hit, coefficient patch of the previous merge
   (strict-prefix extension), full re-merge from cached parts. All
   three are bit-exact equal to [Joint.encode]'s result: the patch adds
   coefficients in the same left-fold order the builder would, and the
   re-merge goes through the same [Joint.merge_frozen]. *)
let obtain t cs ~num_vars =
  let fresh () =
    let parts = List.map (encode_cached t) cs in
    Telemetry.count t.telemetry "incr.remerged" 1;
    Joint.merge_frozen ~num_vars parts
  in
  let qubo =
    match t.merged with
    | Some (prev_cs, prev_q) when prev_cs = cs && Qubo.num_vars prev_q = num_vars ->
      Telemetry.count t.telemetry "incr.cache_hit" 1;
      prev_q
    | Some (prev_cs, prev_q) when Qubo.num_vars prev_q = num_vars -> begin
      match strict_prefix prev_cs cs with
      | None -> fresh ()
      | Some suffix -> begin
        let parts = List.map (encode_cached t) suffix in
        match Qubo.patch_parts prev_q parts with
        | Some (patched, coeffs) ->
          Telemetry.count t.telemetry "incr.patched" 1;
          Telemetry.count t.telemetry "incr.patched_coeffs" coeffs;
          gate_merged t cs patched;
          patched
        | None -> fresh ()
      end
    end
    | _ -> fresh ()
  in
  t.merged <- Some (cs, qubo);
  qubo

(* ------------------------------------------------------------------ *)
(* Sampling with warm start + cold retry                               *)

let warm_init t ~num_vars =
  match t.warm with
  | Some (n, bits) when n = num_vars -> Some (Bitvec.copy bits)
  | _ -> None

let note_warm t samples =
  match Sampleset.best_opt samples with
  | Some e -> t.warm <- Some (Bitvec.length e.Sampleset.bits, Bitvec.copy e.Sampleset.bits)
  | None -> ()

(* One sampler invocation; when [init] is present the run is a warm
   re-solve: seeded from the previous best assignment and allowed to
   early-exit on the first verified read. *)
let sample t ?init ~verify qubo =
  (match init with Some _ -> Telemetry.count t.telemetry "incr.warm_start" 1 | None -> ());
  let early_exit = init <> None in
  Sampler.run_detailed ~verify ?init ~early_exit ~telemetry:t.telemetry t.sampler qubo

(* [sample] with the statically-forced codec bits clamped: the anneal
   runs on the residual, warm-start assignments (always stored full
   size) are projected onto it, and the returned set is lifted back to
   full assignments — so warm/cold bookkeeping upstream never sees
   residual coordinates. With no forced bits this is exactly [sample]. *)
let sample_shrunk t ?init ~verify ~forced qubo =
  match forced with
  | [] -> sample t ?init ~verify qubo
  | forced ->
    Telemetry.count t.telemetry "absint.shrunk" 1;
    let red = Qsmt_qubo.Preprocess.clamp qubo forced in
    if Qsmt_qubo.Preprocess.num_free red = 0 then
      (Sampleset.of_bits qubo [ Qsmt_qubo.Preprocess.expand red (Bitvec.create 0) ], None)
    else begin
      let free = Qsmt_qubo.Preprocess.free_indices red in
      let init =
        Option.map
          (fun bits -> Bitvec.init (Array.length free) (fun r -> Bitvec.get bits free.(r)))
          init
      in
      let verify_r bits = verify (Qsmt_qubo.Preprocess.expand red bits) in
      let samples_r, hardware =
        sample t ?init ~verify:verify_r (Qsmt_qubo.Preprocess.residual red)
      in
      (Solver.lift_samples ~qubo red samples_r, hardware)
    end

(* ------------------------------------------------------------------ *)
(* Single-constraint queries (Generate / Locate)                       *)

let pick_value ~verify constr samples =
  let rec scan best = function
    | [] -> begin
      match best with
      | Some (value, energy) -> (value, false, energy)
      | None -> invalid_arg "Incremental: sampler returned an empty sample set"
    end
    | e :: rest ->
      let value = Compile.decode constr e.Sampleset.bits in
      if verify value then (value, true, e.Sampleset.energy)
      else
        let best =
          match best with Some _ -> best | None -> Some (value, e.Sampleset.energy)
        in
        scan best rest
  in
  scan None (Sampleset.entries samples)

let note_sat t value satisfied =
  match (satisfied, value) with
  | true, Constr.Str s -> t.last_sat <- Some s
  | _ -> ()

(* The previous satisfying string, when it still satisfies [constr] and
   spans exactly its variables, short-circuits sampling entirely. *)
let reuse_model t constr qubo =
  match t.last_sat with
  | Some s
    when Qubo.num_vars qubo = 7 * String.length s && Constr.verify constr (Constr.Str s) ->
    Telemetry.count t.telemetry "incr.model_reuse" 1;
    let bits = Ascii7.encode s in
    Some (Sampleset.of_bits qubo [ bits ], Constr.Str s)
  | _ -> None

let static_generate t constr analysis =
  let value, satisfied =
    match analysis.Absint.verdict with
    | Absint.V_sat value -> (value, true)
    | _ -> (
      ((match constr with Constr.Includes _ -> Constr.Pos None | _ -> Constr.Str ""), false))
  in
  note_sat t value satisfied;
  {
    Solver.constr;
    qubo = Qubo.freeze ~num_vars:(Constr.num_vars constr) (Qubo.builder ());
    samples = Sampleset.empty;
    value;
    satisfied;
    energy = 0.;
    hardware = None;
    decided = Some analysis;
  }

let solve_generate t constr =
  let analysis = analyze t [ constr ] in
  match analysis with
  | Some ({ Absint.verdict = Absint.V_sat _ | Absint.V_unsat _; _ } as a) ->
    (* Decided before any encoding exists: the encode cache, domain
       pool, and warm state are untouched. *)
    static_generate t constr a
  | None | Some { Absint.verdict = Absint.V_undecided; _ } -> (
    let qubo = encode_cached t constr in
    match reuse_model t constr qubo with
    | Some (samples, value) ->
      let energy = (Sampleset.best samples).Sampleset.energy in
      { Solver.constr; qubo; samples; value; satisfied = true; energy; hardware = None;
        decided = None }
    | None ->
      let forced = forced_of analysis in
      let verify_value v = Constr.verify constr v in
      let verify bits = verify_value (Compile.decode constr bits) in
      let init = warm_init t ~num_vars:(Qubo.num_vars qubo) in
      let samples, hardware = sample_shrunk t ?init ~verify ~forced qubo in
      let value, satisfied, energy = pick_value ~verify:verify_value constr samples in
      let samples, hardware, value, satisfied, energy =
        if satisfied || init = None then (samples, hardware, value, satisfied, energy)
        else begin
          (* A failed warm run retries the exact cold configuration, so an
             incremental verdict is never worse than a from-scratch one. *)
          Telemetry.count t.telemetry "incr.cold_retry" 1;
          let samples, hardware = sample_shrunk t ~verify ~forced qubo in
          let value, satisfied, energy = pick_value ~verify:verify_value constr samples in
          (samples, hardware, value, satisfied, energy)
        end
      in
      note_warm t samples;
      note_sat t value satisfied;
      { Solver.constr; qubo; samples; value; satisfied; energy; hardware; decided = None })

(* ------------------------------------------------------------------ *)
(* Joint conjunction queries                                           *)

let verdicts cs s = List.map (fun c -> (c, Constr.verify c (Constr.Str s))) cs

let solve_joint t cs =
  let* length = Joint.common_length cs in
  let num_vars = 7 * length in
  let analysis = analyze t cs in
  match analysis with
  | Some ({ Absint.verdict = (Absint.V_sat _ | Absint.V_unsat _) as verdict; _ } as a) ->
    (* Decided before any merge: encode cache, merged QUBO, and warm
       state stay exactly as the previous query left them. *)
    let outcome = Joint.static_outcome cs ~num_vars ~analysis:a verdict in
    if outcome.Joint.satisfied then t.last_sat <- Some outcome.Joint.value;
    Ok outcome
  | None | Some { Absint.verdict = Absint.V_undecided; _ } -> (
    let forced = forced_of analysis in
    let qubo = obtain t cs ~num_vars in
    let all_ok s = List.for_all (fun c -> Constr.verify c (Constr.Str s)) cs in
    match t.last_sat with
    | Some s when String.length s = length && all_ok s ->
      Telemetry.count t.telemetry "incr.model_reuse" 1;
      let samples = Sampleset.of_bits qubo [ Ascii7.encode s ] in
      note_warm t samples;
      Ok
        { Joint.qubo; samples; value = s; satisfied = true; per_constraint = verdicts cs s;
          decided = None }
    | _ -> begin
      let verify bits = all_ok (Ascii7.decode bits) in
      let init = warm_init t ~num_vars in
      let run init = fst (sample_shrunk t ?init ~verify ~forced qubo) in
      let outcome_of samples =
        let decoded =
          List.map (fun e -> Ascii7.decode e.Sampleset.bits) (Sampleset.entries samples)
        in
        match decoded with
        | [] -> Error "sampler returned an empty sample set"
        | first :: _ -> begin
          match List.find_opt all_ok decoded with
          | Some s ->
            Ok
              ( samples,
                { Joint.qubo; samples; value = s; satisfied = true;
                  per_constraint = verdicts cs s; decided = None } )
          | None ->
            Ok
              ( samples,
                { Joint.qubo; samples; value = first; satisfied = false;
                  per_constraint = verdicts cs first; decided = None } )
        end
      in
      let* samples, outcome = outcome_of (run init) in
      let* samples, outcome =
        if outcome.Joint.satisfied || init = None then Ok (samples, outcome)
        else begin
          Telemetry.count t.telemetry "incr.cold_retry" 1;
          outcome_of (run None)
        end
      in
      note_warm t samples;
      if outcome.Joint.satisfied then t.last_sat <- Some outcome.Joint.value;
      Ok outcome
    end)
