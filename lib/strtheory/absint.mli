(** Pre-encode abstract interpretation over constraint conjunctions.

    Before a constraint ever becomes a QUBO, this pass computes — per
    string position — a sound over-approximation of the characters any
    satisfying assignment may place there: a per-position character-set
    domain seeded from literals and operation structure, refined by
    DFA-based regex reachability and substring-placement feasibility,
    and closed under the equality congruence the palindrome constraint
    induces between mirrored positions. The whole system iterates to a
    fixpoint (domains only shrink, so termination is structural; an
    iteration cap acts as widening for safety).

    Three uses, in decreasing order of payoff:

    - {b static verdicts} — an empty domain proves Unsat; all-singleton
      domains name the unique candidate, which {!Constr.verify} then
      grades, so Sat answers stay classically checked. Either way no
      QUBO is built, no domain pool spun up, no sampler run.
    - {b encoding shrinking} — a codec bit on which every remaining
      domain member agrees is forced; {!Qsmt_qubo.Preprocess.clamp}
      substitutes it into the QUBO so samplers explore only the free
      subspace. Sound for answers because every satisfying assignment
      has the forced bits (the domains over-approximate), and the
      decode scan still verifies classically.
    - {b findings} — verdicts and shrink facts rendered as
      {!Qsmt_qubo.Analyze.finding}s for the lint severity machinery and
      the [qsmt analyze] subcommand.

    Soundness invariant (the one everything above leans on): after any
    number of iterations, for every string [s] with [Constr.verify c
    (Str s)] true for all conjuncts [c], and every position [i],
    [s.[i]] is a member of [doms.(i)]. Transfer functions only remove
    characters no satisfying string can use, so stopping early (the
    widening cap) merely leaves domains larger — never wrong. *)

type gate = [ `On | `Off ]
(** Whether a solve path runs the pass. [`Off] is the [--no-absint]
    escape hatch: bit-exact today's pipeline. *)

type verdict =
  | V_sat of Constr.value
      (** the constraint system is fully determined and the unique
          candidate passed {!Constr.verify} on every conjunct *)
  | V_unsat of string
      (** a contradiction was proven; the payload says where *)
  | V_undecided  (** neither — solve normally (possibly shrunk) *)

type analysis = {
  length : int;  (** common string length in characters ([Includes]: haystack length) *)
  doms : Qsmt_regex.Charset.t array;
      (** per-position over-approximation of satisfying characters;
          [length] entries for string constraints, empty for [Includes] *)
  iterations : int;  (** fixpoint iterations performed *)
  facts : int;  (** domain narrowings + congruence merges derived *)
  widened : bool;  (** the iteration cap stopped refinement early *)
  verdict : verdict;
}

val default_max_iters : int
(** 64 — far beyond what any supported conjunction needs; hitting it
    sets [widened] and keeps whatever sound domains were reached. *)

val analyze : ?max_iters:int -> Constr.t list -> (analysis, string) result
(** Runs the pass over a conjunction (a single-element list for the
    plain solver path). [Error] means the pass does not apply — empty
    list, a conjunct failing {!Constr.validate}, [Includes] mixed with
    string-generating conjuncts, or disagreeing fixed lengths — and the
    caller should fall through to its usual behavior. A single
    [Includes] is decided directly via {!Semantics.index_of}. *)

val forced_bits : analysis -> (int * bool) list
(** QUBO variables the domains force: bit [b] of position [i] (variable
    [7i + b], MSB first) appears iff every member of [doms.(i)] agrees
    on it, with the agreed value. Ascending variable order; empty for
    [Includes] analyses and full domains. *)

val num_fixed_positions : analysis -> int
(** Positions whose domain is a singleton. *)

val candidate : analysis -> string option
(** The unique candidate string when every domain is a singleton. *)

val findings : analysis -> Qsmt_qubo.Analyze.finding list
(** Renders the verdict for the lint machinery: [V_unsat] is an [Error]
    (check ["absint-unsat"]), [V_sat] an [Info] (["absint-sat"]),
    shrinkable-but-undecided an [Info] (["absint-shrink"]), a hit
    widening cap an [Info] (["absint-widened"]). *)

val emit : Qsmt_util.Telemetry.t -> analysis -> unit
(** Telemetry vocabulary: counters [absint.runs],
    [absint.fixpoint_iters], [absint.facts], [absint.positions_fixed],
    [absint.bits_forced], [absint.static_sat] / [absint.static_unsat],
    plus one [absint.done] event. No-op on the null handle. *)

val pp : Format.formatter -> analysis -> unit
(** Multi-line human rendering ([qsmt analyze]'s text output). *)
