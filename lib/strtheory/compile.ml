module Bitvec = Qsmt_util.Bitvec
module Ascii7 = Qsmt_util.Ascii7
module Telemetry = Qsmt_util.Telemetry
module Qubo = Qsmt_qubo.Qubo

let op_name = function
  | Constr.Equals _ -> "equals"
  | Constr.Concat _ -> "concat"
  | Constr.Contains _ -> "contains"
  | Constr.Includes _ -> "includes"
  | Constr.Index_of _ -> "indexof"
  | Constr.Has_length _ -> "length"
  | Constr.Replace_all _ -> "replace_all"
  | Constr.Replace_first _ -> "replace_first"
  | Constr.Reverse _ -> "reverse"
  | Constr.Palindrome _ -> "palindrome"
  | Constr.Regex _ -> "regex"

let to_qubo ?params ?(telemetry = Telemetry.null) c =
  (match Constr.validate c with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Compile.to_qubo: " ^ msg));
  let q =
    match c with
    | Constr.Equals s -> Op_equality.encode ?params s
    | Constr.Concat parts -> Op_concat.encode ?params parts
    | Constr.Contains { length; substring } -> Op_substring.encode ?params ~length ~substring ()
    | Constr.Includes { haystack; needle } -> Op_includes.encode ?params ~haystack ~needle ()
    | Constr.Index_of { length; substring; index } ->
      Op_indexof.encode ?params ~length ~substring ~index ()
    | Constr.Has_length { num_chars; target_length } ->
      Op_length.encode ?params ~num_chars ~target_length ()
    | Constr.Replace_all { source; find; replace } ->
      Op_replace.encode_all ?params ~source ~find ~replace ()
    | Constr.Replace_first { source; find; replace } ->
      Op_replace.encode_first ?params ~source ~find ~replace ()
    | Constr.Reverse source -> Op_reverse.encode ?params source
    | Constr.Palindrome { length } -> Op_palindrome.encode ?params ~length ()
    | Constr.Regex { pattern; length } -> Op_regex.encode_exn ?params ~pattern ~length ()
  in
  if Telemetry.enabled telemetry then begin
    let op = op_name c in
    let vars = Qubo.num_vars q and terms = Qubo.num_interactions q in
    (* Per-operator totals: [encode.<op>.vars] counts binary variables
       (ASCII bits + aux), [encode.<op>.penalty_terms] the quadratic
       penalty interactions the encoding introduced. *)
    Telemetry.count telemetry ("encode." ^ op ^ ".vars") vars;
    Telemetry.count telemetry ("encode." ^ op ^ ".penalty_terms") terms;
    Telemetry.emit telemetry "encode.done"
      [
        ("op", Telemetry.Str op);
        ("vars", Telemetry.Int vars);
        ("penalty_terms", Telemetry.Int terms);
        ("offset", Telemetry.Float (Qubo.offset q));
      ]
  end;
  q

let decode c bits =
  let expected = Constr.num_vars c in
  if Bitvec.length bits <> expected then
    invalid_arg
      (Printf.sprintf "Compile.decode: sample has %d bits, constraint uses %d" (Bitvec.length bits)
         expected);
  match c with
  | Constr.Includes _ -> Constr.Pos (Op_includes.decode bits)
  | Constr.Equals _ | Constr.Concat _ | Constr.Contains _ | Constr.Index_of _
  | Constr.Has_length _ | Constr.Replace_all _ | Constr.Replace_first _ | Constr.Reverse _
  | Constr.Palindrome _ | Constr.Regex _ ->
    Constr.Str (Ascii7.decode bits)
