(** Joint encoding of constraint conjunctions (extension of §4.12).

    The paper combines constraints sequentially — each operation is its
    own annealing run and strings flow between them. That cannot express
    a {e conjunction} ("a palindrome that contains 'ab'"): transformation
    pipelines compose functions, not predicates. This module provides the
    alternative the paper leaves open: merge the QUBOs of several
    string-generating constraints over the {e same} [7·L] variables by
    adding their coefficient matrices, then anneal once.

    Additive merging is sound in the sense that any string satisfying all
    conjuncts sits at the sum of their (individually minimal) energies;
    it is not complete — penalties from one constraint can overwhelm
    another's and the joint ground state may satisfy neither exactly
    (measured in the Ext-5 bench). The solver therefore verifies each
    conjunct classically, as always. *)

val compatible : Constr.t -> int option
(** [compatible c] is [Some length] if [c] generates a string of a fixed
    known length (every operation except {!Constr.Includes}), [None]
    otherwise. *)

val common_length : Constr.t list -> (int, string) result
(** The single string length every conjunct generates, or why there
    isn't one (empty list, an {!Constr.Includes}, disagreeing lengths,
    a failed validation). *)

val merge_frozen : num_vars:int -> Qsmt_qubo.Qubo.t list -> Qsmt_qubo.Qubo.t
(** [merge_frozen ~num_vars parts] adds the parts' coefficient matrices
    and offsets (in list order) and freezes over [num_vars] variables.
    This is {e the} merge fold: {!encode} goes through it, and the
    incremental solver re-merges cached per-conjunct encodings through it
    so the result is bit-exact identical to a full recompile. *)

val encode : ?params:Params.t -> Constr.t list -> (Qsmt_qubo.Qubo.t * int, string) result
(** [encode cs] merges the encodings; the result's second component is
    the common string length. [Error] if the list is empty, a conjunct
    is {!Constr.Includes}, lengths disagree, or any conjunct fails its
    own validation. *)

type outcome = {
  qubo : Qsmt_qubo.Qubo.t;
  samples : Qsmt_anneal.Sampleset.t;
  value : string;  (** decoded best candidate *)
  satisfied : bool;  (** all conjuncts verified *)
  per_constraint : (Constr.t * bool) list;  (** which conjuncts the value satisfies *)
  decided : Absint.analysis option;
      (** [Some] iff the abstract interpreter decided the conjunction
          statically: [qubo] is an empty placeholder, [samples] is empty
          (zero reads), and on unsat [value = ""] with every conjunct
          reported unsatisfied. A static unsat is a proof. *)
}

val static_outcome :
  Constr.t list ->
  num_vars:int ->
  analysis:Absint.analysis ->
  Absint.verdict ->
  outcome
(** The outcome shape of a statically-decided conjunction (shared with
    {!Incremental}): empty placeholder QUBO over [num_vars], empty
    sample set, and either the verified candidate ([V_sat]) or the
    all-unsatisfied unsat report. *)

val solve :
  ?params:Params.t ->
  ?sampler:Qsmt_anneal.Sampler.t ->
  ?absint:Absint.gate ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  Constr.t list ->
  (outcome, string) result
(** Samples once over the merged QUBO and scans in energy order for the
    first string satisfying {e all} conjuncts; if none does, the
    lowest-energy decode is reported with its per-conjunct verdicts.

    [absint] (default [`On]) runs {!Absint.analyze} over the conjunction
    first: a static verdict skips merging and sampling entirely, and an
    undecided analysis clamps the statically-forced codec bits so the
    sampler anneals only the free subspace (answers and energies are
    unchanged — samples are lifted back and verified classically; pass
    [`Off] for a bit-exact replay of the unshrunk pipeline). *)
