module Sampleset = Qsmt_anneal.Sampleset
module Sampler = Qsmt_anneal.Sampler
module Sa = Qsmt_anneal.Sa
module Parallel = Qsmt_util.Parallel

type outcome = {
  constr : Constr.t;
  qubo : Qsmt_qubo.Qubo.t;
  samples : Sampleset.t;
  value : Constr.value;
  satisfied : bool;
  energy : float;
  hardware : Qsmt_anneal.Hardware.stats option;
}

type stage_timing = { encode_s : float; sample_s : float; decode_s : float }

let default_sampler ~seed =
  Sampler.simulated_annealing ~params:{ Sa.default with Sa.seed } ()

let pick_value constr samples =
  (* First (= lowest-energy) sample whose decode verifies; otherwise the
     overall best sample. Decoding is lazy — the seed revision decoded
     every entry up front, so a best read that verifies immediately still
     paid for the whole set; now it costs exactly one decode. *)
  let rec scan best = function
    | [] -> begin
      match best with
      | Some (value, energy) -> (value, false, energy)
      | None -> invalid_arg "Solver: sampler returned an empty sample set"
    end
    | e :: rest ->
      let value = Compile.decode constr e.Sampleset.bits in
      if Constr.verify constr value then (value, true, e.Sampleset.energy)
      else
        let best =
          match best with Some _ -> best | None -> Some (value, e.Sampleset.energy)
        in
        scan best rest
  in
  scan None (Sampleset.entries samples)

let now () = Unix.gettimeofday ()

let solve_timed ?params ?sampler constr =
  let sampler = match sampler with Some s -> s | None -> default_sampler ~seed:0 in
  let t0 = now () in
  let qubo = Compile.to_qubo ?params constr in
  let t1 = now () in
  (* The verifier lets portfolio samplers exit as soon as any read
     decodes to a satisfying value; deterministic samplers ignore it. *)
  let verify bits = Constr.verify constr (Compile.decode constr bits) in
  let samples, hardware = Sampler.run_detailed ~verify sampler qubo in
  let t2 = now () in
  let value, satisfied, energy = pick_value constr samples in
  let t3 = now () in
  ( { constr; qubo; samples; value; satisfied; energy; hardware },
    { encode_s = t1 -. t0; sample_s = t2 -. t1; decode_s = t3 -. t2 } )

let solve ?params ?sampler constr = fst (solve_timed ?params ?sampler constr)

let solve_batch ?params ?sampler ?(jobs = 0) constrs =
  let jobs = if jobs > 0 then jobs else Parallel.recommended_domains () in
  let constrs = Array.of_list constrs in
  Array.to_list (Parallel.init_array ~domains:jobs (Array.length constrs) (fun i ->
      solve_timed ?params ?sampler constrs.(i)))

type pipeline_error = {
  stage_index : int;
  blocking_value : Constr.value;
  completed : outcome list;
}

let solve_pipeline ?params ?sampler pipeline =
  let first = solve ?params ?sampler pipeline.Pipeline.initial in
  (* Stages transform a string; a positional decode (only the initial
     constraint can produce one, via Includes) has no string to feed
     forward, so the run stops with a typed error instead of silently
     degrading the input to "". *)
  let rec go index input acc = function
    | [] -> Ok (List.rev acc)
    | stage :: rest ->
      let constr = Pipeline.constraint_for stage ~input in
      let outcome = solve ?params ?sampler constr in
      let acc = outcome :: acc in
      (match outcome.value with
      | Constr.Str s -> go (index + 1) s acc rest
      | Constr.Pos _ when rest = [] -> Ok (List.rev acc)
      | Constr.Pos _ ->
        Error { stage_index = index; blocking_value = outcome.value; completed = List.rev acc })
  in
  match first.value with
  | Constr.Str s -> go 1 s [ first ] pipeline.Pipeline.stages
  | Constr.Pos _ when pipeline.Pipeline.stages = [] -> Ok [ first ]
  | Constr.Pos _ ->
    Error { stage_index = 0; blocking_value = first.value; completed = [ first ] }

let pipeline_output outcomes =
  match List.rev outcomes with
  | [] -> None
  | last :: _ -> ( match last.value with Constr.Str s -> Some s | Constr.Pos _ -> None)
