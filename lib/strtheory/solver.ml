module Sampleset = Qsmt_anneal.Sampleset
module Sampler = Qsmt_anneal.Sampler
module Sa = Qsmt_anneal.Sa
module Parallel = Qsmt_util.Parallel
module Telemetry = Qsmt_util.Telemetry
module Qubo = Qsmt_qubo.Qubo
module Preprocess = Qsmt_qubo.Preprocess

type outcome = {
  constr : Constr.t;
  qubo : Qsmt_qubo.Qubo.t;
  samples : Sampleset.t;
  value : Constr.value;
  satisfied : bool;
  energy : float;
  hardware : Qsmt_anneal.Hardware.stats option;
  decided : Absint.analysis option;
}

type stage_timing = {
  encode_s : float;
  sample_s : float;
  decode_s : float;
  verify_s : float;
}

let default_sampler ~seed =
  Sampler.simulated_annealing ~params:{ Sa.default with Sa.seed } ()

let pick_value ~verify constr samples =
  (* First (= lowest-energy) sample whose decode verifies; otherwise the
     overall best sample. Decoding is lazy — the seed revision decoded
     every entry up front, so a best read that verifies immediately still
     paid for the whole set; now it costs exactly one decode. *)
  let rec scan best = function
    | [] -> begin
      match best with
      | Some (value, energy) -> (value, false, energy)
      | None -> invalid_arg "Solver: sampler returned an empty sample set"
    end
    | e :: rest ->
      let value = Compile.decode constr e.Sampleset.bits in
      if verify value then (value, true, e.Sampleset.energy)
      else
        let best =
          match best with Some _ -> best | None -> Some (value, e.Sampleset.energy)
        in
        scan best rest
  in
  scan None (Sampleset.entries samples)

let now () = Unix.gettimeofday ()

(* Lift a residual sample set back over the original variables,
   recomputing each energy against the full QUBO so shrunk and unshrunk
   solves report identical energies for identical assignments (the
   residual's folded offset is equal only up to float association). *)
let lift_samples ~qubo red samples =
  Sampleset.of_entries
    (List.map
       (fun e ->
         let bits = Preprocess.expand red e.Sampleset.bits in
         {
           Sampleset.bits;
           energy = Qubo.energy qubo bits;
           occurrences = e.Sampleset.occurrences;
         })
       (Sampleset.entries samples))

let run_absint ~telemetry cs =
  match Absint.analyze cs with
  | Ok a ->
    Absint.emit telemetry a;
    Some a
  | Error _ -> None

let solve_timed ?params ?sampler ?(lint = `Off) ?lint_config ?(absint = `On)
    ?(telemetry = Telemetry.null) constr =
  let sampler = match sampler with Some s -> s | None -> default_sampler ~seed:0 in
  (* Verification happens in two places — inside the sampler (the
     portfolio's early-exit callback, possibly from several domains at
     once) and in the decode scan below — so its cost is accumulated
     under a mutex rather than read off wall-clock checkpoints.
     [sample_s] stays raw sampler wall time; [verify_s] is the total
     verification work wherever it ran; [decode_s] is the decode scan
     minus its share of the verify time. *)
  let verify_mutex = Mutex.create () in
  let verify_total = ref 0. in
  let timed dt =
    Mutex.lock verify_mutex;
    verify_total := !verify_total +. dt;
    Mutex.unlock verify_mutex
  in
  let verify_value value =
    let s = now () in
    let ok = Constr.verify constr value in
    timed (now () -. s);
    ok
  in
  let solve_span = Telemetry.span telemetry "solve" in
  (* GC pressure probe for the whole solve span: encode + sample +
     decode dominate this process's allocation, and the delta lands in
     gc.* counters/histograms plus one gc.delta event on the span. *)
  Telemetry.with_gc_probe telemetry ~span:solve_span @@ fun () ->
  (* Pre-encode abstract interpretation: a static verdict returns
     before any QUBO exists — no encoding, no domain pool, no sampler
     reads. An undecided analysis still pays off below by clamping the
     codec bits it proved forced. [`Off] is bit-exact today's path. *)
  let analysis =
    match absint with
    | `Off -> None
    | `On ->
      Telemetry.with_span telemetry ~parent:solve_span "absint" (fun _ ->
          run_absint ~telemetry [ constr ])
  in
  let static value satisfied =
    if Telemetry.enabled telemetry then begin
      Telemetry.count telemetry "solve.constraints" 1;
      Telemetry.emit telemetry ~span:solve_span "solve.done"
        [
          ("op", Telemetry.Str (Compile.op_name constr));
          ("satisfied", Telemetry.Bool satisfied);
          ("energy", Telemetry.Float 0.);
          ("reads", Telemetry.Int 0);
        ]
    end;
    Telemetry.finish telemetry solve_span;
    ( {
        constr;
        qubo = Qubo.freeze ~num_vars:(Constr.num_vars constr) (Qubo.builder ());
        samples = Sampleset.empty;
        value;
        satisfied;
        energy = 0.;
        hardware = None;
        decided = analysis;
      },
      { encode_s = 0.; sample_s = 0.; decode_s = 0.; verify_s = 0. } )
  in
  match analysis with
  | Some { Absint.verdict = Absint.V_sat value; _ } -> static value true
  | Some { Absint.verdict = Absint.V_unsat _; _ } ->
    let value =
      match constr with Constr.Includes _ -> Constr.Pos None | _ -> Constr.Str ""
    in
    static value false
  | None | Some { Absint.verdict = Absint.V_undecided; _ } ->
  let t0 = now () in
  let qubo =
    Telemetry.with_span telemetry ~parent:solve_span "encode" (fun _ ->
        Compile.to_qubo ?params ~telemetry constr)
  in
  let t1 = now () in
  (* Optional pre-sample gate: reject statically-broken encodings before
     any annealing time is spent. Raises [Lint.Rejected]. *)
  (match lint with
  | `Off -> ()
  | (`Error | `Warning) as gate ->
    Telemetry.with_span telemetry ~parent:solve_span "lint" (fun _ ->
        Lint.gate_check ?config:lint_config ~telemetry ~gate constr qubo));
  (* The verifier lets portfolio samplers exit as soon as any read
     decodes to a satisfying value; deterministic samplers ignore it. *)
  let verify bits =
    let s = now () in
    let value = Compile.decode constr bits in
    timed (now () -. s);
    verify_value value
  in
  let forced = match analysis with Some a -> Absint.forced_bits a | None -> [] in
  let samples, hardware =
    Telemetry.with_span telemetry ~parent:solve_span "sample" (fun _ ->
        match forced with
        | [] -> Sampler.run_detailed ~verify ~telemetry sampler qubo
        | forced ->
          (* Clamp the statically-forced bits and anneal only the free
             subspace; samples lift back to full assignments before the
             decode scan, so everything downstream is unchanged. *)
          Telemetry.count telemetry "absint.shrunk" 1;
          let red = Preprocess.clamp qubo forced in
          if Preprocess.num_free red = 0 then
            ( Sampleset.of_bits qubo
                [ Preprocess.expand red (Qsmt_util.Bitvec.create 0) ],
              None )
          else begin
            let verify_r bits = verify (Preprocess.expand red bits) in
            let samples_r, hardware =
              Sampler.run_detailed ~verify:verify_r ~telemetry sampler
                (Preprocess.residual red)
            in
            (lift_samples ~qubo red samples_r, hardware)
          end)
  in
  let t2 = now () in
  let verify_before_pick = !verify_total in
  let value, satisfied, energy =
    Telemetry.with_span telemetry ~parent:solve_span "decode" (fun _ ->
        pick_value ~verify:verify_value constr samples)
  in
  let t3 = now () in
  if Telemetry.enabled telemetry then begin
    Telemetry.count telemetry "solve.constraints" 1;
    Telemetry.emit telemetry ~span:solve_span "solve.done"
      [
        ("op", Telemetry.Str (Compile.op_name constr));
        ("satisfied", Telemetry.Bool satisfied);
        ("energy", Telemetry.Float energy);
        ("reads", Telemetry.Int (Sampleset.total_reads samples));
      ]
  end;
  Telemetry.finish telemetry solve_span;
  ( { constr; qubo; samples; value; satisfied; energy; hardware; decided = None },
    {
      encode_s = t1 -. t0;
      sample_s = t2 -. t1;
      decode_s = t3 -. t2 -. (!verify_total -. verify_before_pick);
      verify_s = !verify_total;
    } )

let solve ?params ?sampler ?lint ?lint_config ?absint ?telemetry constr =
  fst (solve_timed ?params ?sampler ?lint ?lint_config ?absint ?telemetry constr)

let solve_batch ?params ?sampler ?lint ?lint_config ?absint ?telemetry ?(jobs = 0) constrs =
  let jobs = if jobs > 0 then jobs else Parallel.recommended_domains () in
  let constrs = Array.of_list constrs in
  Array.to_list (Parallel.init_array ?telemetry ~domains:jobs (Array.length constrs) (fun i ->
      solve_timed ?params ?sampler ?lint ?lint_config ?absint ?telemetry constrs.(i)))

type pipeline_error = {
  stage_index : int;
  blocking_value : Constr.value;
  completed : outcome list;
}

let solve_pipeline ?params ?sampler ?lint ?lint_config ?absint ?telemetry pipeline =
  let first = solve ?params ?sampler ?lint ?lint_config ?absint ?telemetry pipeline.Pipeline.initial in
  (* Stages transform a string; a positional decode (only the initial
     constraint can produce one, via Includes) has no string to feed
     forward, so the run stops with a typed error instead of silently
     degrading the input to "". *)
  let rec go index input acc = function
    | [] -> Ok (List.rev acc)
    | stage :: rest ->
      let constr = Pipeline.constraint_for stage ~input in
      let outcome = solve ?params ?sampler ?lint ?lint_config ?absint ?telemetry constr in
      let acc = outcome :: acc in
      (match outcome.value with
      | Constr.Str s -> go (index + 1) s acc rest
      | Constr.Pos _ when rest = [] -> Ok (List.rev acc)
      | Constr.Pos _ ->
        Error { stage_index = index; blocking_value = outcome.value; completed = List.rev acc })
  in
  match first.value with
  | Constr.Str s -> go 1 s [ first ] pipeline.Pipeline.stages
  | Constr.Pos _ when pipeline.Pipeline.stages = [] -> Ok [ first ]
  | Constr.Pos _ ->
    Error { stage_index = 0; blocking_value = first.value; completed = [ first ] }

let pipeline_output outcomes =
  match List.rev outcomes with
  | [] -> None
  | last :: _ -> ( match last.value with Constr.Str s -> Some s | Constr.Pos _ -> None)
