module Sampleset = Qsmt_anneal.Sampleset
module Sampler = Qsmt_anneal.Sampler
module Sa = Qsmt_anneal.Sa
module Parallel = Qsmt_util.Parallel
module Telemetry = Qsmt_util.Telemetry

type outcome = {
  constr : Constr.t;
  qubo : Qsmt_qubo.Qubo.t;
  samples : Sampleset.t;
  value : Constr.value;
  satisfied : bool;
  energy : float;
  hardware : Qsmt_anneal.Hardware.stats option;
}

type stage_timing = {
  encode_s : float;
  sample_s : float;
  decode_s : float;
  verify_s : float;
}

let default_sampler ~seed =
  Sampler.simulated_annealing ~params:{ Sa.default with Sa.seed } ()

let pick_value ~verify constr samples =
  (* First (= lowest-energy) sample whose decode verifies; otherwise the
     overall best sample. Decoding is lazy — the seed revision decoded
     every entry up front, so a best read that verifies immediately still
     paid for the whole set; now it costs exactly one decode. *)
  let rec scan best = function
    | [] -> begin
      match best with
      | Some (value, energy) -> (value, false, energy)
      | None -> invalid_arg "Solver: sampler returned an empty sample set"
    end
    | e :: rest ->
      let value = Compile.decode constr e.Sampleset.bits in
      if verify value then (value, true, e.Sampleset.energy)
      else
        let best =
          match best with Some _ -> best | None -> Some (value, e.Sampleset.energy)
        in
        scan best rest
  in
  scan None (Sampleset.entries samples)

let now () = Unix.gettimeofday ()

let solve_timed ?params ?sampler ?(lint = `Off) ?lint_config ?(telemetry = Telemetry.null)
    constr =
  let sampler = match sampler with Some s -> s | None -> default_sampler ~seed:0 in
  (* Verification happens in two places — inside the sampler (the
     portfolio's early-exit callback, possibly from several domains at
     once) and in the decode scan below — so its cost is accumulated
     under a mutex rather than read off wall-clock checkpoints.
     [sample_s] stays raw sampler wall time; [verify_s] is the total
     verification work wherever it ran; [decode_s] is the decode scan
     minus its share of the verify time. *)
  let verify_mutex = Mutex.create () in
  let verify_total = ref 0. in
  let timed dt =
    Mutex.lock verify_mutex;
    verify_total := !verify_total +. dt;
    Mutex.unlock verify_mutex
  in
  let verify_value value =
    let s = now () in
    let ok = Constr.verify constr value in
    timed (now () -. s);
    ok
  in
  let solve_span = Telemetry.span telemetry "solve" in
  (* GC pressure probe for the whole solve span: encode + sample +
     decode dominate this process's allocation, and the delta lands in
     gc.* counters/histograms plus one gc.delta event on the span. *)
  Telemetry.with_gc_probe telemetry ~span:solve_span @@ fun () ->
  let t0 = now () in
  let qubo =
    Telemetry.with_span telemetry ~parent:solve_span "encode" (fun _ ->
        Compile.to_qubo ?params ~telemetry constr)
  in
  let t1 = now () in
  (* Optional pre-sample gate: reject statically-broken encodings before
     any annealing time is spent. Raises [Lint.Rejected]. *)
  (match lint with
  | `Off -> ()
  | (`Error | `Warning) as gate ->
    Telemetry.with_span telemetry ~parent:solve_span "lint" (fun _ ->
        Lint.gate_check ?config:lint_config ~telemetry ~gate constr qubo));
  (* The verifier lets portfolio samplers exit as soon as any read
     decodes to a satisfying value; deterministic samplers ignore it. *)
  let verify bits =
    let s = now () in
    let value = Compile.decode constr bits in
    timed (now () -. s);
    verify_value value
  in
  let samples, hardware =
    Telemetry.with_span telemetry ~parent:solve_span "sample" (fun _ ->
        Sampler.run_detailed ~verify ~telemetry sampler qubo)
  in
  let t2 = now () in
  let verify_before_pick = !verify_total in
  let value, satisfied, energy =
    Telemetry.with_span telemetry ~parent:solve_span "decode" (fun _ ->
        pick_value ~verify:verify_value constr samples)
  in
  let t3 = now () in
  if Telemetry.enabled telemetry then begin
    Telemetry.count telemetry "solve.constraints" 1;
    Telemetry.emit telemetry ~span:solve_span "solve.done"
      [
        ("op", Telemetry.Str (Compile.op_name constr));
        ("satisfied", Telemetry.Bool satisfied);
        ("energy", Telemetry.Float energy);
        ("reads", Telemetry.Int (Sampleset.total_reads samples));
      ]
  end;
  Telemetry.finish telemetry solve_span;
  ( { constr; qubo; samples; value; satisfied; energy; hardware },
    {
      encode_s = t1 -. t0;
      sample_s = t2 -. t1;
      decode_s = t3 -. t2 -. (!verify_total -. verify_before_pick);
      verify_s = !verify_total;
    } )

let solve ?params ?sampler ?lint ?lint_config ?telemetry constr =
  fst (solve_timed ?params ?sampler ?lint ?lint_config ?telemetry constr)

let solve_batch ?params ?sampler ?lint ?lint_config ?telemetry ?(jobs = 0) constrs =
  let jobs = if jobs > 0 then jobs else Parallel.recommended_domains () in
  let constrs = Array.of_list constrs in
  Array.to_list (Parallel.init_array ?telemetry ~domains:jobs (Array.length constrs) (fun i ->
      solve_timed ?params ?sampler ?lint ?lint_config ?telemetry constrs.(i)))

type pipeline_error = {
  stage_index : int;
  blocking_value : Constr.value;
  completed : outcome list;
}

let solve_pipeline ?params ?sampler ?lint ?lint_config ?telemetry pipeline =
  let first = solve ?params ?sampler ?lint ?lint_config ?telemetry pipeline.Pipeline.initial in
  (* Stages transform a string; a positional decode (only the initial
     constraint can produce one, via Includes) has no string to feed
     forward, so the run stops with a typed error instead of silently
     degrading the input to "". *)
  let rec go index input acc = function
    | [] -> Ok (List.rev acc)
    | stage :: rest ->
      let constr = Pipeline.constraint_for stage ~input in
      let outcome = solve ?params ?sampler ?lint ?lint_config ?telemetry constr in
      let acc = outcome :: acc in
      (match outcome.value with
      | Constr.Str s -> go (index + 1) s acc rest
      | Constr.Pos _ when rest = [] -> Ok (List.rev acc)
      | Constr.Pos _ ->
        Error { stage_index = index; blocking_value = outcome.value; completed = List.rev acc })
  in
  match first.value with
  | Constr.Str s -> go 1 s [ first ] pipeline.Pipeline.stages
  | Constr.Pos _ when pipeline.Pipeline.stages = [] -> Ok [ first ]
  | Constr.Pos _ ->
    Error { stage_index = 0; blocking_value = first.value; completed = [ first ] }

let pipeline_output outcomes =
  match List.rev outcomes with
  | [] -> None
  | last :: _ -> ( match last.value with Constr.Str s -> Some s | Constr.Pos _ -> None)
