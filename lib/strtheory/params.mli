(** Encoding parameters (penalty strengths).

    The paper fixes the base penalty strength to [A = 1] ("we find that
    this coefficient works best with our simulated annealer") and derives
    the others from it: substring-indexOf uses [2A] where the substring
    is forced and [0.1A] as the soft printable bias elsewhere (§4.5);
    string-includes uses a quadratic one-hot penalty [B] and a
    first-match increment [D] (§4.4). All of them are exposed so the
    ablation benches can sweep them. *)

type t = {
  a : float;  (** base penalty strength A (default 1.0) *)
  strong_scale : float;  (** multiplier for forced positions in indexOf (default 2.0) *)
  soft_scale : float;  (** multiplier for soft bias positions (default 0.1) *)
  includes_b : float;  (** one-hot pairwise penalty B for includes (default 2.0) *)
  includes_d : float;  (** per-later-match increment D for includes (default 1.0) *)
}

val default : t

type invalid_reason =
  | Nonpositive  (** zero or negative: the penalty would vanish or invert *)
  | Not_finite  (** nan or infinity: every compiled coefficient is garbage *)

type invalid = { field : string; value : float; reason : invalid_reason }
(** Which strength failed, with what value and why — a typed error so
    the CLI's [--param] path can fail fast instead of compiling a
    garbage QUBO (an earlier revision's "positive" check let [infinity]
    through: [infinity > 0.] holds). *)

val validate : t -> (unit, invalid) result
(** All strengths must be finite and strictly positive. *)

val invalid_message : invalid -> string
(** One-line rendering of an {!invalid}. *)

val pp : Format.formatter -> t -> unit
