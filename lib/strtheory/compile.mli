(** Constraint → QUBO compilation and sample decoding.

    The single dispatch point between the constraint AST and the
    per-operation encoders; the inverse direction turns an annealer
    sample (a bit vector over the constraint's variables) back into a
    {!Constr.value}. *)

val op_name : Constr.t -> string
(** Stable lowercase tag of the constraint's operation ("equals",
    "indexof", …) — the key telemetry counters and events are named
    under. *)

val to_qubo :
  ?params:Params.t -> ?telemetry:Qsmt_util.Telemetry.t -> Constr.t -> Qsmt_qubo.Qubo.t
(** [telemetry] records per-operator encoding totals — counters
    [encode.<op>.vars] and [encode.<op>.penalty_terms] (quadratic
    interactions) — plus one [encode.done] event with the same numbers
    and the constant offset.
    @raise Invalid_argument if the constraint fails
    {!Constr.validate}. *)

val decode : Constr.t -> Qsmt_util.Bitvec.t -> Constr.value
(** String constraints decode all [7n] bits through the ASCII codec
    (unconstrained bits fall where the sampler left them); {!Constr.Includes}
    decodes the one-hot position.
    @raise Invalid_argument if the sample length does not match
    [Constr.num_vars]. *)
