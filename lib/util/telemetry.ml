type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  ts : float;
  ev : string;
  span : int;
  parent : int;
  fields : (string * value) list;
}

(* P² (Jain & Chlamtac, 1985) streaming quantile marker state: five
   marker heights tracking min, the quantile and its two flanking
   markers, and max. O(1) memory and deterministic — quantile estimates
   never consume randomness, which the instrumentation-invisibility
   invariant depends on. *)
type p2 = {
  p2_p : float;
  p2_q : float array; (* marker heights *)
  p2_n : int array; (* marker positions, 1-based *)
  p2_d : float array; (* desired marker positions *)
}

type hist = {
  mutable h_n : int;
  mutable h_lo : float;
  mutable h_hi : float;
  mutable h_mean : float;
  mutable h_m2 : float; (* Welford sum of squared deviations *)
  h_buf : float array; (* first 5 observations: exact small-n quantiles *)
  mutable h_q : p2 array; (* marker states, one per tracked quantile; [||] until n = 5 *)
}

let tracked_quantiles = [| 0.5; 0.9; 0.99 |]

let p2_init p sorted5 =
  {
    p2_p = p;
    p2_q = Array.copy sorted5;
    p2_n = [| 1; 2; 3; 4; 5 |];
    p2_d = [| 1.; 1. +. (2. *. p); 1. +. (4. *. p); 3. +. (2. *. p); 5. |];
  }

let p2_update st x =
  let q = st.p2_q and np = st.p2_n and dn = st.p2_d in
  let k =
    if x < q.(0) then begin
      q.(0) <- x;
      0
    end
    else if x >= q.(4) then begin
      q.(4) <- x;
      3
    end
    else begin
      let k = ref 0 in
      for i = 1 to 3 do
        if x >= q.(i) then k := i
      done;
      !k
    end
  in
  for i = k + 1 to 4 do
    np.(i) <- np.(i) + 1
  done;
  dn.(1) <- dn.(1) +. (st.p2_p /. 2.);
  dn.(2) <- dn.(2) +. st.p2_p;
  dn.(3) <- dn.(3) +. ((1. +. st.p2_p) /. 2.);
  dn.(4) <- dn.(4) +. 1.;
  for i = 1 to 3 do
    let d = dn.(i) -. float_of_int np.(i) in
    if
      (d >= 1. && np.(i + 1) - np.(i) > 1) || (d <= -1. && np.(i - 1) - np.(i) < -1)
    then begin
      let s = if d >= 1. then 1 else -1 in
      let sf = float_of_int s in
      let qi = q.(i) and qp = q.(i + 1) and qm = q.(i - 1) in
      let ni = float_of_int np.(i)
      and nip = float_of_int np.(i + 1)
      and nim = float_of_int np.(i - 1) in
      let parabolic =
        qi
        +. sf /. (nip -. nim)
           *. (((ni -. nim +. sf) *. (qp -. qi) /. (nip -. ni))
              +. ((nip -. ni -. sf) *. (qi -. qm) /. (ni -. nim)))
      in
      let updated =
        if qm < parabolic && parabolic < qp then parabolic
        else if s > 0 then qi +. ((qp -. qi) /. (nip -. ni))
        else qi -. ((qm -. qi) /. (nim -. ni))
      in
      q.(i) <- updated;
      np.(i) <- np.(i) + s
    end
  done

(* Exact quantile of a small sample (linear interpolation between order
   statistics), matching [Stats.percentile]'s convention. *)
let exact_quantile xs p =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let xs = Array.copy xs in
    Array.sort Float.compare xs;
    let r = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor r) in
    let hi = min (n - 1) (lo + 1) in
    let w = r -. float_of_int lo in
    ((1. -. w) *. xs.(lo)) +. (w *. xs.(hi))
  end

type sink = Null | Collector of event list ref | Aggregate | Jsonl of out_channel

type t = {
  sink : sink;
  mutex : Mutex.t;
  epoch : float;
  next_id : int Atomic.t;
  mutable last_ts : float;
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  span_agg : (string, (int * float) ref) Hashtbl.t;
  open_spans : (int, string) Hashtbl.t; (* ids of begun-but-unfinished spans *)
}

type span = { id : int; sname : string; sparent : int; start : float }

let no_span = { id = -1; sname = ""; sparent = -1; start = 0. }

let make sink =
  {
    sink;
    mutex = Mutex.create ();
    epoch = Unix.gettimeofday ();
    next_id = Atomic.make 0;
    last_ts = 0.;
    counters = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    span_agg = Hashtbl.create 16;
    open_spans = Hashtbl.create 16;
  }

let null = make Null
let enabled t = match t.sink with Null -> false | _ -> true
let collector () = make (Collector (ref []))
let aggregate_only () = make Aggregate
let jsonl oc = make (Jsonl oc)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ------------------------------------------------------------------ *)
(* JSON encoding *)

let buf_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let buf_add_json_float buf x =
  (* JSON has no inf/nan literals; clamp to null so a pathological
     observation can never corrupt the trace. *)
  if Float.is_finite x then Buffer.add_string buf (Printf.sprintf "%.9g" x)
  else Buffer.add_string buf "null"

let buf_add_value buf = function
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x -> buf_add_json_float buf x
  | Str s -> buf_add_json_string buf s
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let event_to_json e =
  let buf = Buffer.create 96 in
  Buffer.add_string buf "{\"ts\":";
  buf_add_json_float buf e.ts;
  Buffer.add_string buf ",\"ev\":";
  buf_add_json_string buf e.ev;
  if e.span >= 0 then Buffer.add_string buf (Printf.sprintf ",\"span\":%d" e.span);
  if e.parent >= 0 then Buffer.add_string buf (Printf.sprintf ",\"parent\":%d" e.parent);
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ',';
      buf_add_json_string buf k;
      Buffer.add_char buf ':';
      buf_add_value buf v)
    e.fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Emission *)

(* Caller holds the mutex. Wall clock reads are clamped to the previous
   timestamp so the exported stream is non-decreasing even if the system
   clock steps backwards mid-run. *)
let now_locked t =
  let raw = Unix.gettimeofday () -. t.epoch in
  let ts = if raw > t.last_ts then raw else t.last_ts in
  t.last_ts <- ts;
  ts

let write_locked t e =
  match t.sink with
  | Null -> ()
  | Aggregate -> ()
  | Collector r -> r := e :: !r
  | Jsonl oc ->
    output_string oc (event_to_json e);
    output_char oc '\n'

let emit_locked t ?(span = no_span) ev fields =
  let e = { ts = now_locked t; ev; span = span.id; parent = span.sparent; fields } in
  write_locked t e

let emit t ?span ev fields =
  if enabled t then locked t (fun () -> emit_locked t ?span ev fields)

let count t name n =
  if enabled t then
    locked t (fun () ->
        match Hashtbl.find_opt t.counters name with
        | Some r -> r := !r + n
        | None -> Hashtbl.replace t.counters name (ref n))

let observe t name x =
  if enabled t then
    locked t (fun () ->
        let h =
          match Hashtbl.find_opt t.hists name with
          | Some h -> h
          | None ->
            let h =
              {
                h_n = 0;
                h_lo = infinity;
                h_hi = neg_infinity;
                h_mean = 0.;
                h_m2 = 0.;
                h_buf = Array.make 5 0.;
                h_q = [||];
              }
            in
            Hashtbl.replace t.hists name h;
            h
        in
        h.h_n <- h.h_n + 1;
        if x < h.h_lo then h.h_lo <- x;
        if x > h.h_hi then h.h_hi <- x;
        let d = x -. h.h_mean in
        h.h_mean <- h.h_mean +. (d /. float_of_int h.h_n);
        h.h_m2 <- h.h_m2 +. (d *. (x -. h.h_mean));
        if h.h_n <= 5 then begin
          h.h_buf.(h.h_n - 1) <- x;
          if h.h_n = 5 then begin
            let sorted = Array.copy h.h_buf in
            Array.sort Float.compare sorted;
            h.h_q <- Array.map (fun p -> p2_init p sorted) tracked_quantiles
          end
        end
        else Array.iter (fun st -> p2_update st x) h.h_q)

let gauge t name x =
  if enabled t then
    locked t (fun () ->
        match Hashtbl.find_opt t.gauges name with
        | Some r -> r := x
        | None -> Hashtbl.replace t.gauges name (ref x))

(* ------------------------------------------------------------------ *)
(* Spans *)

let span t ?(parent = no_span) name =
  if not (enabled t) then no_span
  else begin
    let id = Atomic.fetch_and_add t.next_id 1 in
    locked t (fun () ->
        let start = now_locked t in
        let e =
          { ts = start; ev = "span.begin"; span = id; parent = parent.id; fields = [ ("name", Str name) ] }
        in
        write_locked t e;
        Hashtbl.replace t.open_spans id name;
        { id; sname = name; sparent = parent.id; start })
  end

let finish t sp =
  if enabled t && sp.id >= 0 then
    locked t (fun () ->
        let ts = now_locked t in
        let dur = ts -. sp.start in
        let e =
          {
            ts;
            ev = "span.end";
            span = sp.id;
            parent = sp.sparent;
            fields = [ ("name", Str sp.sname); ("dur_s", Float dur) ];
          }
        in
        write_locked t e;
        Hashtbl.remove t.open_spans sp.id;
        match Hashtbl.find_opt t.span_agg sp.sname with
        | Some r ->
          let n, total = !r in
          r := (n + 1, total +. dur)
        | None -> Hashtbl.replace t.span_agg sp.sname (ref (1, dur)))

let with_span t ?parent name f =
  let sp = span t ?parent name in
  Fun.protect ~finally:(fun () -> finish t sp) (fun () -> f sp)

(* ------------------------------------------------------------------ *)
(* Aggregate read-back and flush *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = List.map (fun (k, r) -> (k, !r)) (locked t (fun () -> sorted_bindings t.counters))
let find_counter t name = locked t (fun () -> Option.map ( ! ) (Hashtbl.find_opt t.counters name))

type hist_summary = {
  h_count : int;
  h_min : float;
  h_max : float;
  h_mean : float;
  h_stddev : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

let hist_quantile h p =
  if h.h_n = 0 then Float.nan
  else if h.h_n <= 5 then exact_quantile (Array.sub h.h_buf 0 h.h_n) p
  else begin
    (* marker 2 of the matching P² state is the running estimate *)
    let rec find i =
      if i >= Array.length tracked_quantiles then Float.nan
      else if tracked_quantiles.(i) = p then h.h_q.(i).p2_q.(2)
      else find (i + 1)
    in
    find 0
  end

let summarize h =
  {
    h_count = h.h_n;
    h_min = h.h_lo;
    h_max = h.h_hi;
    h_mean = h.h_mean;
    h_stddev = (if h.h_n < 2 then 0. else sqrt (h.h_m2 /. float_of_int (h.h_n - 1)));
    h_p50 = hist_quantile h 0.5;
    h_p90 = hist_quantile h 0.9;
    h_p99 = hist_quantile h 0.99;
  }

let histograms t =
  List.map (fun (k, h) -> (k, summarize h)) (locked t (fun () -> sorted_bindings t.hists))

let gauges t = List.map (fun (k, r) -> (k, !r)) (locked t (fun () -> sorted_bindings t.gauges))

let span_totals t =
  List.map
    (fun (k, r) ->
      let n, total = !r in
      (k, n, total))
    (locked t (fun () -> sorted_bindings t.span_agg))

let events t =
  match t.sink with Collector r -> locked t (fun () -> List.rev !r) | _ -> []

let flush t =
  if enabled t then
    locked t (fun () ->
        List.iter
          (fun (name, r) -> emit_locked t "counter" [ ("name", Str name); ("n", Int !r) ])
          (sorted_bindings t.counters);
        List.iter
          (fun (name, r) -> emit_locked t "gauge" [ ("name", Str name); ("value", Float !r) ])
          (sorted_bindings t.gauges);
        List.iter
          (fun (name, h) ->
            let s = summarize h in
            emit_locked t "hist"
              [
                ("name", Str name);
                ("count", Int s.h_count);
                ("min", Float s.h_min);
                ("max", Float s.h_max);
                ("mean", Float s.h_mean);
                ("stddev", Float s.h_stddev);
                ("p50", Float s.h_p50);
                ("p90", Float s.h_p90);
                ("p99", Float s.h_p99);
              ])
          (sorted_bindings t.hists);
        match t.sink with Jsonl oc -> Stdlib.flush oc | _ -> ())

let with_jsonl path f =
  let oc = open_out path in
  let t = jsonl oc in
  Fun.protect
    ~finally:(fun () ->
      flush t;
      close_out oc)
    (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Snapshot + Prometheus-style exposition *)

type snapshot = {
  snap_elapsed_s : float;
  snap_phase : string option; (* most recently begun still-open span *)
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_hists : (string * hist_summary) list;
  snap_spans : (string * int * float) list;
  snap_open_spans : (string * int) list; (* open span count per name *)
}

let empty_snapshot =
  {
    snap_elapsed_s = 0.;
    snap_phase = None;
    snap_counters = [];
    snap_gauges = [];
    snap_hists = [];
    snap_spans = [];
    snap_open_spans = [];
  }

(* One lock acquisition for the whole read, so a snapshot taken from a
   progress-reporter domain is a consistent cut of all aggregates. *)
let snapshot t =
  if not (enabled t) then empty_snapshot
  else
    locked t (fun () ->
        let counters = List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.counters) in
        let gauges = List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.gauges) in
        let hists = List.map (fun (k, h) -> (k, summarize h)) (sorted_bindings t.hists) in
        let spans =
          List.map
            (fun (k, r) ->
              let n, total = !r in
              (k, n, total))
            (sorted_bindings t.span_agg)
        in
        (* span ids are allocated monotonically, so the open span with the
           highest id is the most recently begun — the current "phase" *)
        let phase =
          Hashtbl.fold
            (fun id name acc ->
              match acc with
              | Some (best, _) when best >= id -> acc
              | _ -> Some (id, name))
            t.open_spans None
          |> Option.map snd
        in
        let open_counts = Hashtbl.create 8 in
        Hashtbl.iter
          (fun _ name ->
            match Hashtbl.find_opt open_counts name with
            | Some r -> incr r
            | None -> Hashtbl.replace open_counts name (ref 1))
          t.open_spans;
        let opens = List.map (fun (k, r) -> (k, !r)) (sorted_bindings open_counts) in
        {
          snap_elapsed_s = now_locked t;
          snap_phase = phase;
          snap_counters = counters;
          snap_gauges = gauges;
          snap_hists = hists;
          snap_spans = spans;
          snap_open_spans = opens;
        })

(* Prometheus text-format exposition. Metric names are the event
   vocabulary with non-[a-zA-Z0-9_] bytes mapped to '_' and a "qsmt_"
   prefix; histograms render as summaries (p50/p90/p99 quantile lines
   plus _sum/_count and non-standard _min/_max). Everything is emitted
   in sorted order so the dump is diffable. *)
let expose_name name =
  "qsmt_"
  ^ String.map
      (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name

let expose_float x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" x

let expose_text snap =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "# qsmt metrics (Prometheus text exposition)";
  (match snap.snap_phase with Some p -> line "# phase: %s" p | None -> ());
  line "# TYPE qsmt_uptime_seconds gauge";
  line "qsmt_uptime_seconds %s" (expose_float snap.snap_elapsed_s);
  List.iter
    (fun (name, n) ->
      let m = expose_name name ^ "_total" in
      line "# TYPE %s counter" m;
      line "%s %d" m n)
    snap.snap_counters;
  List.iter
    (fun (name, v) ->
      let m = expose_name name in
      line "# TYPE %s gauge" m;
      line "%s %s" m (expose_float v))
    snap.snap_gauges;
  List.iter
    (fun (name, s) ->
      let m = expose_name name in
      line "# TYPE %s summary" m;
      line "%s{quantile=\"0.5\"} %s" m (expose_float s.h_p50);
      line "%s{quantile=\"0.9\"} %s" m (expose_float s.h_p90);
      line "%s{quantile=\"0.99\"} %s" m (expose_float s.h_p99);
      line "%s_sum %s" m (expose_float (s.h_mean *. float_of_int s.h_count));
      line "%s_count %d" m s.h_count;
      line "%s_min %s" m (expose_float s.h_min);
      line "%s_max %s" m (expose_float s.h_max))
    snap.snap_hists;
  if snap.snap_spans <> [] then begin
    line "# TYPE qsmt_span_seconds_total counter";
    List.iter
      (fun (name, _, total) -> line "qsmt_span_seconds_total{span=\"%s\"} %s" name (expose_float total))
      snap.snap_spans;
    line "# TYPE qsmt_span_count_total counter";
    List.iter (fun (name, n, _) -> line "qsmt_span_count_total{span=\"%s\"} %d" name n) snap.snap_spans
  end;
  if snap.snap_open_spans <> [] then begin
    line "# TYPE qsmt_open_spans gauge";
    List.iter
      (fun (name, n) -> line "qsmt_open_spans{span=\"%s\"} %d" name n)
      snap.snap_open_spans
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* GC probes *)

(* Per-solve GC deltas from [Gc.quick_stat] (cheap: no heap walk). On
   OCaml 5 the word counts are domain-local, so a probe around a
   multi-domain sample phase reports the orchestrating domain's share —
   deltas are a pressure signal, not an exact allocation ledger. *)
let with_gc_probe t ?span f =
  if not (enabled t) then f ()
  else begin
    let g0 = Gc.quick_stat () in
    Fun.protect
      ~finally:(fun () ->
        let g1 = Gc.quick_stat () in
        let minor_words = g1.Gc.minor_words -. g0.Gc.minor_words in
        let major_words = g1.Gc.major_words -. g0.Gc.major_words in
        let promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words in
        let minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections in
        let major_collections = g1.Gc.major_collections - g0.Gc.major_collections in
        count t "gc.minor_collections" minor_collections;
        count t "gc.major_collections" major_collections;
        observe t "gc.minor_words" minor_words;
        observe t "gc.major_words" major_words;
        observe t "gc.promoted_words" promoted_words;
        gauge t "gc.heap_words" (float_of_int g1.Gc.heap_words);
        emit t ?span "gc.delta"
          [
            ("minor_words", Float minor_words);
            ("major_words", Float major_words);
            ("promoted_words", Float promoted_words);
            ("minor_collections", Int minor_collections);
            ("major_collections", Int major_collections);
          ])
      f
  end

(* ------------------------------------------------------------------ *)
(* JSONL validation.

   A trace is a CI artifact consumed by external tooling, so "it parses"
   has to mean real JSON, not just "our writer ran" — this is a small
   but complete JSON reader (objects, arrays, strings with escapes,
   numbers, literals) used by `qsmt trace` and the cram/CI smoke. *)

exception Bad of string

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

let parse_json line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad msg) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && line.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C at byte %d" c !pos)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = line.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          if !pos >= n then fail "dangling escape";
          let e = line.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub line !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail "bad \\u escape"
            | Some code ->
              (* traces are ASCII; decode BMP escapes to '?' outside it *)
              if code < 128 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?');
            pos := !pos + 4
          | _ -> fail "unknown escape");
          go ()
        | c -> Buffer.add_char buf c; go ()
      end
    in
    go ()
  in
  let parse_literal word v =
    if !pos + String.length word <= n && String.sub line !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("bad literal at byte " ^ string_of_int !pos)
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char line.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some x -> J_num x
    | None -> fail ("bad number at byte " ^ string_of_int start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J_obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            J_obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J_list []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            J_list (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some 't' -> parse_literal "true" (J_bool true)
    | Some 'f' -> parse_literal "false" (J_bool false)
    | Some 'n' -> parse_literal "null" J_null
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at byte %d" !pos) else Ok v
  | exception Bad msg -> Error msg

(* Field lookup helpers over a parsed trace line. *)
let jfield members k = List.assoc_opt k members
let jnum members k = match jfield members k with Some (J_num x) -> Some x | _ -> None
let jstr members k = match jfield members k with Some (J_str s) -> Some s | _ -> None
let jint members k = Option.map int_of_float (jnum members k)

(* State of one open span while validating / exporting a trace. *)
type open_rec = {
  o_name : string;
  o_parent : int;
  o_line : int;
  o_ts : float;
  mutable o_children : int;
}

let validate_jsonl ic =
  (* In addition to the line-level contract (JSON object, string "ev",
     non-decreasing float "ts"), check span balance: every span.begin
     carries a fresh id and an open (or absent) parent, every span.end
     closes an open id with a matching name and no still-open children,
     and nothing is left open at end of input. *)
  let opens : (int, open_rec) Hashtbl.t = Hashtbl.create 32 in
  let err lineno fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt in
  let check_span lineno ev members ts =
    match ev with
    | "span.begin" -> begin
      match (jint members "span", jstr members "name") with
      | None, _ -> err lineno "span.begin without an integer \"span\" id"
      | _, None -> err lineno "span.begin without a string \"name\""
      | Some id, Some name ->
        if Hashtbl.mem opens id then err lineno "span id %d begun twice" id
        else begin
          let parent = match jint members "parent" with Some p -> p | None -> -1 in
          if parent >= 0 then begin
            match Hashtbl.find_opt opens parent with
            | None -> err lineno "span %d (%s) begins under unopened parent %d" id name parent
            | Some po ->
              po.o_children <- po.o_children + 1;
              Hashtbl.replace opens id
                { o_name = name; o_parent = parent; o_line = lineno; o_ts = ts; o_children = 0 };
              Ok ()
          end
          else begin
            Hashtbl.replace opens id
              { o_name = name; o_parent = parent; o_line = lineno; o_ts = ts; o_children = 0 };
            Ok ()
          end
        end
    end
    | "span.end" -> begin
      match jint members "span" with
      | None -> err lineno "span.end without an integer \"span\" id"
      | Some id -> begin
        match Hashtbl.find_opt opens id with
        | None -> err lineno "span.end for id %d which is not open" id
        | Some o ->
          if o.o_children > 0 then
            err lineno "span %d (%s) ends with %d child span(s) still open" id o.o_name
              o.o_children
          else begin
            (match jstr members "name" with
            | Some n when n <> o.o_name ->
              err lineno "span %d ends as %S but began as %S (line %d)" id n o.o_name o.o_line
            | _ ->
              Hashtbl.remove opens id;
              (match Hashtbl.find_opt opens o.o_parent with
              | Some po -> po.o_children <- po.o_children - 1
              | None -> ());
              Ok ())
          end
      end
    end
    | _ -> Ok ()
  in
  let rec go lineno count last_ts =
    match In_channel.input_line ic with
    | None ->
      if Hashtbl.length opens = 0 then Ok count
      else begin
        (* report the earliest-opened dangling span *)
        let worst =
          Hashtbl.fold
            (fun id o acc ->
              match acc with
              | Some (_, o') when o'.o_line <= o.o_line -> acc
              | _ -> Some (id, o))
            opens None
        in
        match worst with
        | Some (id, o) ->
          Error
            (Printf.sprintf "end of input: span %d (%s) opened at line %d never ends" id
               o.o_name o.o_line)
        | None -> Ok count
      end
    | Some line when String.trim line = "" -> go (lineno + 1) count last_ts
    | Some line -> begin
      match parse_json line with
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      | Ok (J_obj members) -> begin
        match (jfield members "ev", jfield members "ts") with
        | Some (J_str ev), Some (J_num ts) ->
          if ts < last_ts then
            Error
              (Printf.sprintf "line %d: timestamp %g decreases (previous %g)" lineno ts last_ts)
          else begin
            match check_span lineno ev members ts with
            | Error _ as e -> e
            | Ok () -> go (lineno + 1) (count + 1) ts
          end
        | Some (J_str _), _ -> Error (Printf.sprintf "line %d: missing numeric \"ts\"" lineno)
        | _, _ -> Error (Printf.sprintf "line %d: missing string \"ev\"" lineno)
      end
      | Ok _ -> Error (Printf.sprintf "line %d: not a JSON object" lineno)
    end
  in
  go 1 0 neg_infinity

let validate_jsonl_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic -> Fun.protect ~finally:(fun () -> close_in ic) (fun () -> validate_jsonl ic)

(* ------------------------------------------------------------------ *)
(* Trace replay: rebuild a snapshot from a flushed JSONL trace *)

let snapshot_of_jsonl ic =
  (* Counters / gauges / histogram summaries come from the flush-emitted
     summary events (last flush wins — flushes are cumulative); span
     totals are re-accumulated from the span.end stream, which also
     yields whatever is left open at end of trace. *)
  let counters = Hashtbl.create 16 in
  let gauges = Hashtbl.create 16 in
  let hists = Hashtbl.create 16 in
  let spans = Hashtbl.create 16 in
  let opens = Hashtbl.create 16 in
  let last_ts = ref 0. in
  let last_open = ref None in
  let rec go lineno =
    match In_channel.input_line ic with
    | None -> Ok ()
    | Some line when String.trim line = "" -> go (lineno + 1)
    | Some line -> begin
      match parse_json line with
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      | Ok (J_obj members) -> begin
        (match jnum members "ts" with Some ts when ts > !last_ts -> last_ts := ts | _ -> ());
        (match jstr members "ev" with
        | Some "counter" -> begin
          match (jstr members "name", jint members "n") with
          | Some name, Some n -> Hashtbl.replace counters name n
          | _ -> ()
        end
        | Some "gauge" -> begin
          match (jstr members "name", jnum members "value") with
          | Some name, Some v -> Hashtbl.replace gauges name v
          | _ -> ()
        end
        | Some "hist" -> begin
          match jstr members "name" with
          | Some name ->
            let f k = match jnum members k with Some x -> x | None -> Float.nan in
            let n = match jint members "count" with Some n -> n | None -> 0 in
            Hashtbl.replace hists name
              {
                h_count = n;
                h_min = f "min";
                h_max = f "max";
                h_mean = f "mean";
                h_stddev = f "stddev";
                h_p50 = f "p50";
                h_p90 = f "p90";
                h_p99 = f "p99";
              }
          | None -> ()
        end
        | Some "span.begin" -> begin
          match (jint members "span", jstr members "name") with
          | Some id, Some name ->
            Hashtbl.replace opens id name;
            last_open := Some (id, name)
          | _ -> ()
        end
        | Some "span.end" -> begin
          match (jint members "span", jstr members "name", jnum members "dur_s") with
          | Some id, Some name, Some dur ->
            Hashtbl.remove opens id;
            (match Hashtbl.find_opt spans name with
            | Some r ->
              let n, total = !r in
              r := (n + 1, total +. dur)
            | None -> Hashtbl.replace spans name (ref (1, dur)))
          | _ -> ()
        end
        | _ -> ());
        go (lineno + 1)
      end
      | Ok _ -> Error (Printf.sprintf "line %d: not a JSON object" lineno)
    end
  in
  match go 1 with
  | Error _ as e -> e
  | Ok () ->
    let open_counts = Hashtbl.create 8 in
    Hashtbl.iter
      (fun _ name ->
        match Hashtbl.find_opt open_counts name with
        | Some r -> incr r
        | None -> Hashtbl.replace open_counts name (ref 1))
      opens;
    let phase =
      match !last_open with
      | Some (id, name) when Hashtbl.mem opens id -> Some name
      | _ -> None
    in
    Ok
      {
        snap_elapsed_s = !last_ts;
        snap_phase = phase;
        snap_counters = List.map (fun (k, n) -> (k, n)) (sorted_bindings counters);
        snap_gauges = List.map (fun (k, v) -> (k, v)) (sorted_bindings gauges);
        snap_hists = List.map (fun (k, s) -> (k, s)) (sorted_bindings hists);
        snap_spans =
          List.map
            (fun (k, r) ->
              let n, total = !r in
              (k, n, total))
            (sorted_bindings spans);
        snap_open_spans = List.map (fun (k, r) -> (k, !r)) (sorted_bindings open_counts);
      }

let snapshot_of_jsonl_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic -> Fun.protect ~finally:(fun () -> close_in ic) (fun () -> snapshot_of_jsonl ic)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export *)

let rec json_to_buf buf = function
  | J_null -> Buffer.add_string buf "null"
  | J_bool b -> Buffer.add_string buf (if b then "true" else "false")
  | J_num x ->
    if Float.is_integer x && Float.abs x < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" x)
    else buf_add_json_float buf x
  | J_str s -> buf_add_json_string buf s
  | J_list l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        json_to_buf buf v)
      l;
    Buffer.add_char buf ']'
  | J_obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        buf_add_json_string buf k;
        Buffer.add_char buf ':';
        json_to_buf buf v)
      members;
    Buffer.add_char buf '}'

(* Converts a JSONL trace to Chrome trace-event format (the JSON
   Perfetto / chrome://tracing load). Spans become "X" complete events;
   concurrency is made visible by assigning each span a lane ("tid"):
   a span shares its parent's lane when the parent is the lane's
   innermost open span, otherwise it gets the first free lane — so the
   portfolio's overlapping members and the decomposer's parallel shards
   land on separate rows. Point events become instants on their owning
   span's lane; counter and gauge summaries become "C" counter events. *)
let export_chrome ic oc =
  let reserved = [ "ts"; "ev"; "span"; "parent" ] in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string buf "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"qsmt\"}}";
  let count = ref 0 in
  let lanes : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let nlanes = ref 0 in
  let span_lane : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let span_info : (int, open_rec) Hashtbl.t = Hashtbl.create 32 in
  let lane_top l = match Hashtbl.find_opt lanes l with Some (x :: _) -> Some x | _ -> None in
  let alloc_lane parent =
    let chosen =
      match (if parent >= 0 then Hashtbl.find_opt span_lane parent else None) with
      | Some lp when lane_top lp = Some parent -> Some lp
      | _ ->
        let rec free l = if l >= !nlanes then None else if lane_top l = None then Some l else free (l + 1) in
        free 0
    in
    match chosen with
    | Some l -> l
    | None ->
      let l = !nlanes in
      incr nlanes;
      l
  in
  let add_event json_fragment =
    Buffer.add_char buf ',';
    Buffer.add_string buf json_fragment;
    incr count
  in
  let ev_buf = Buffer.create 128 in
  let frag fmt = Printf.ksprintf (fun s -> s) fmt in
  let args_of members =
    Buffer.clear ev_buf;
    Buffer.add_char ev_buf '{';
    let first = ref true in
    List.iter
      (fun (k, v) ->
        if not (List.mem k reserved) then begin
          if not !first then Buffer.add_char ev_buf ',';
          first := false;
          buf_add_json_string ev_buf k;
          Buffer.add_char ev_buf ':';
          json_to_buf ev_buf v
        end)
      members;
    Buffer.add_char ev_buf '}';
    Buffer.contents ev_buf
  in
  let rec go lineno =
    match In_channel.input_line ic with
    | None -> Ok ()
    | Some line when String.trim line = "" -> go (lineno + 1)
    | Some line -> begin
      match parse_json line with
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      | Ok (J_obj members) -> begin
        match (jstr members "ev", jnum members "ts") with
        | Some ev, Some ts -> begin
          let us = ts *. 1e6 in
          (match ev with
          | "span.begin" -> begin
            match (jint members "span", jstr members "name") with
            | Some id, Some name ->
              let parent = match jint members "parent" with Some p -> p | None -> -1 in
              let lane = alloc_lane parent in
              Hashtbl.replace lanes lane
                (id :: (match Hashtbl.find_opt lanes lane with Some s -> s | None -> []));
              Hashtbl.replace span_lane id lane;
              Hashtbl.replace span_info id
                { o_name = name; o_parent = parent; o_line = lineno; o_ts = ts; o_children = 0 }
            | _ -> ()
          end
          | "span.end" -> begin
            match jint members "span" with
            | Some id -> begin
              match Hashtbl.find_opt span_info id with
              | None -> ()
              | Some o ->
                let lane = match Hashtbl.find_opt span_lane id with Some l -> l | None -> 0 in
                let dur =
                  match jnum members "dur_s" with Some d -> d *. 1e6 | None -> us -. (o.o_ts *. 1e6)
                in
                Buffer.clear ev_buf;
                buf_add_json_string ev_buf o.o_name;
                add_event
                  (frag
                     "{\"name\":%s,\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"span\":%d,\"parent\":%d}}"
                     (Buffer.contents ev_buf) (lane + 1) (o.o_ts *. 1e6) dur id o.o_parent);
                (match Hashtbl.find_opt lanes lane with
                | Some stack -> Hashtbl.replace lanes lane (List.filter (fun x -> x <> id) stack)
                | None -> ());
                Hashtbl.remove span_lane id;
                Hashtbl.remove span_info id
            end
            | None -> ()
          end
          | "counter" | "gauge" -> begin
            match jstr members "name" with
            | Some name ->
              let v =
                match (jnum members "n", jnum members "value") with
                | Some n, _ -> n
                | None, Some v -> v
                | None, None -> 0.
              in
              Buffer.clear ev_buf;
              buf_add_json_string ev_buf name;
              add_event
                (frag "{\"name\":%s,\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%.3f,\"args\":{\"value\":%s}}"
                   (Buffer.contents ev_buf) us (expose_float v))
            | None -> ()
          end
          | "hist" -> ()
          | _ ->
            let lane =
              match jint members "span" with
              | Some id -> (
                match Hashtbl.find_opt span_lane id with Some l -> l + 1 | None -> 0)
              | None -> 0
            in
            let args = args_of members in
            Buffer.clear ev_buf;
            buf_add_json_string ev_buf ev;
            add_event
              (frag "{\"name\":%s,\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":%s}"
                 (Buffer.contents ev_buf) lane us args));
          go (lineno + 1)
        end
        | _ -> Error (Printf.sprintf "line %d: missing \"ev\" or \"ts\"" lineno)
      end
      | Ok _ -> Error (Printf.sprintf "line %d: not a JSON object" lineno)
    end
  in
  match go 1 with
  | Error _ as e -> e
  | Ok () ->
    for l = 0 to !nlanes - 1 do
      Buffer.add_char buf ',';
      Buffer.add_string buf
        (frag "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"lane %d\"}}"
           (l + 1) (l + 1))
    done;
    Buffer.add_string buf "]}";
    output_string oc (Buffer.contents buf);
    Ok !count

let export_chrome_file ~src ~dst =
  match open_in src with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match open_out dst with
        | exception Sys_error msg -> Error msg
        | oc -> Fun.protect ~finally:(fun () -> close_out oc) (fun () -> export_chrome ic oc))
