type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  ts : float;
  ev : string;
  span : int;
  parent : int;
  fields : (string * value) list;
}

type hist = {
  mutable h_n : int;
  mutable h_lo : float;
  mutable h_hi : float;
  mutable h_mean : float;
  mutable h_m2 : float; (* Welford sum of squared deviations *)
}

type sink = Null | Collector of event list ref | Aggregate | Jsonl of out_channel

type t = {
  sink : sink;
  mutex : Mutex.t;
  epoch : float;
  next_id : int Atomic.t;
  mutable last_ts : float;
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  span_agg : (string, (int * float) ref) Hashtbl.t;
}

type span = { id : int; sname : string; sparent : int; start : float }

let no_span = { id = -1; sname = ""; sparent = -1; start = 0. }

let make sink =
  {
    sink;
    mutex = Mutex.create ();
    epoch = Unix.gettimeofday ();
    next_id = Atomic.make 0;
    last_ts = 0.;
    counters = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    span_agg = Hashtbl.create 16;
  }

let null = make Null
let enabled t = match t.sink with Null -> false | _ -> true
let collector () = make (Collector (ref []))
let aggregate_only () = make Aggregate
let jsonl oc = make (Jsonl oc)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ------------------------------------------------------------------ *)
(* JSON encoding *)

let buf_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let buf_add_json_float buf x =
  (* JSON has no inf/nan literals; clamp to null so a pathological
     observation can never corrupt the trace. *)
  if Float.is_finite x then Buffer.add_string buf (Printf.sprintf "%.9g" x)
  else Buffer.add_string buf "null"

let buf_add_value buf = function
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x -> buf_add_json_float buf x
  | Str s -> buf_add_json_string buf s
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let event_to_json e =
  let buf = Buffer.create 96 in
  Buffer.add_string buf "{\"ts\":";
  buf_add_json_float buf e.ts;
  Buffer.add_string buf ",\"ev\":";
  buf_add_json_string buf e.ev;
  if e.span >= 0 then Buffer.add_string buf (Printf.sprintf ",\"span\":%d" e.span);
  if e.parent >= 0 then Buffer.add_string buf (Printf.sprintf ",\"parent\":%d" e.parent);
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ',';
      buf_add_json_string buf k;
      Buffer.add_char buf ':';
      buf_add_value buf v)
    e.fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Emission *)

(* Caller holds the mutex. Wall clock reads are clamped to the previous
   timestamp so the exported stream is non-decreasing even if the system
   clock steps backwards mid-run. *)
let now_locked t =
  let raw = Unix.gettimeofday () -. t.epoch in
  let ts = if raw > t.last_ts then raw else t.last_ts in
  t.last_ts <- ts;
  ts

let write_locked t e =
  match t.sink with
  | Null -> ()
  | Aggregate -> ()
  | Collector r -> r := e :: !r
  | Jsonl oc ->
    output_string oc (event_to_json e);
    output_char oc '\n'

let emit_locked t ?(span = no_span) ev fields =
  let e = { ts = now_locked t; ev; span = span.id; parent = span.sparent; fields } in
  write_locked t e

let emit t ?span ev fields =
  if enabled t then locked t (fun () -> emit_locked t ?span ev fields)

let count t name n =
  if enabled t then
    locked t (fun () ->
        match Hashtbl.find_opt t.counters name with
        | Some r -> r := !r + n
        | None -> Hashtbl.replace t.counters name (ref n))

let observe t name x =
  if enabled t then
    locked t (fun () ->
        let h =
          match Hashtbl.find_opt t.hists name with
          | Some h -> h
          | None ->
            let h = { h_n = 0; h_lo = infinity; h_hi = neg_infinity; h_mean = 0.; h_m2 = 0. } in
            Hashtbl.replace t.hists name h;
            h
        in
        h.h_n <- h.h_n + 1;
        if x < h.h_lo then h.h_lo <- x;
        if x > h.h_hi then h.h_hi <- x;
        let d = x -. h.h_mean in
        h.h_mean <- h.h_mean +. (d /. float_of_int h.h_n);
        h.h_m2 <- h.h_m2 +. (d *. (x -. h.h_mean)))

(* ------------------------------------------------------------------ *)
(* Spans *)

let span t ?(parent = no_span) name =
  if not (enabled t) then no_span
  else begin
    let id = Atomic.fetch_and_add t.next_id 1 in
    locked t (fun () ->
        let start = now_locked t in
        let e =
          { ts = start; ev = "span.begin"; span = id; parent = parent.id; fields = [ ("name", Str name) ] }
        in
        write_locked t e;
        { id; sname = name; sparent = parent.id; start })
  end

let finish t sp =
  if enabled t && sp.id >= 0 then
    locked t (fun () ->
        let ts = now_locked t in
        let dur = ts -. sp.start in
        let e =
          {
            ts;
            ev = "span.end";
            span = sp.id;
            parent = sp.sparent;
            fields = [ ("name", Str sp.sname); ("dur_s", Float dur) ];
          }
        in
        write_locked t e;
        match Hashtbl.find_opt t.span_agg sp.sname with
        | Some r ->
          let n, total = !r in
          r := (n + 1, total +. dur)
        | None -> Hashtbl.replace t.span_agg sp.sname (ref (1, dur)))

let with_span t ?parent name f =
  let sp = span t ?parent name in
  Fun.protect ~finally:(fun () -> finish t sp) (fun () -> f sp)

(* ------------------------------------------------------------------ *)
(* Aggregate read-back and flush *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = List.map (fun (k, r) -> (k, !r)) (locked t (fun () -> sorted_bindings t.counters))
let find_counter t name = locked t (fun () -> Option.map ( ! ) (Hashtbl.find_opt t.counters name))

type hist_summary = {
  h_count : int;
  h_min : float;
  h_max : float;
  h_mean : float;
  h_stddev : float;
}

let summarize h =
  {
    h_count = h.h_n;
    h_min = h.h_lo;
    h_max = h.h_hi;
    h_mean = h.h_mean;
    h_stddev = (if h.h_n < 2 then 0. else sqrt (h.h_m2 /. float_of_int (h.h_n - 1)));
  }

let histograms t =
  List.map (fun (k, h) -> (k, summarize h)) (locked t (fun () -> sorted_bindings t.hists))

let span_totals t =
  List.map
    (fun (k, r) ->
      let n, total = !r in
      (k, n, total))
    (locked t (fun () -> sorted_bindings t.span_agg))

let events t =
  match t.sink with Collector r -> locked t (fun () -> List.rev !r) | _ -> []

let flush t =
  if enabled t then
    locked t (fun () ->
        List.iter
          (fun (name, r) -> emit_locked t "counter" [ ("name", Str name); ("n", Int !r) ])
          (sorted_bindings t.counters);
        List.iter
          (fun (name, h) ->
            let s = summarize h in
            emit_locked t "hist"
              [
                ("name", Str name);
                ("count", Int s.h_count);
                ("min", Float s.h_min);
                ("max", Float s.h_max);
                ("mean", Float s.h_mean);
                ("stddev", Float s.h_stddev);
              ])
          (sorted_bindings t.hists);
        match t.sink with Jsonl oc -> Stdlib.flush oc | _ -> ())

let with_jsonl path f =
  let oc = open_out path in
  let t = jsonl oc in
  Fun.protect
    ~finally:(fun () ->
      flush t;
      close_out oc)
    (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* JSONL validation.

   A trace is a CI artifact consumed by external tooling, so "it parses"
   has to mean real JSON, not just "our writer ran" — this is a small
   but complete JSON reader (objects, arrays, strings with escapes,
   numbers, literals) used by `qsmt trace` and the cram/CI smoke. *)

exception Bad of string

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

let parse_json line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad msg) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && line.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C at byte %d" c !pos)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = line.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          if !pos >= n then fail "dangling escape";
          let e = line.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub line !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail "bad \\u escape"
            | Some code ->
              (* traces are ASCII; decode BMP escapes to '?' outside it *)
              if code < 128 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?');
            pos := !pos + 4
          | _ -> fail "unknown escape");
          go ()
        | c -> Buffer.add_char buf c; go ()
      end
    in
    go ()
  in
  let parse_literal word v =
    if !pos + String.length word <= n && String.sub line !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("bad literal at byte " ^ string_of_int !pos)
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char line.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some x -> J_num x
    | None -> fail ("bad number at byte " ^ string_of_int start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J_obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            J_obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J_list []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            J_list (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some 't' -> parse_literal "true" (J_bool true)
    | Some 'f' -> parse_literal "false" (J_bool false)
    | Some 'n' -> parse_literal "null" J_null
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at byte %d" !pos) else Ok v
  | exception Bad msg -> Error msg

let validate_jsonl ic =
  let rec go lineno count last_ts =
    match In_channel.input_line ic with
    | None -> Ok count
    | Some line when String.trim line = "" -> go (lineno + 1) count last_ts
    | Some line -> begin
      match parse_json line with
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      | Ok (J_obj members) -> begin
        match (List.assoc_opt "ev" members, List.assoc_opt "ts" members) with
        | Some (J_str _), Some (J_num ts) ->
          if ts < last_ts then
            Error
              (Printf.sprintf "line %d: timestamp %g decreases (previous %g)" lineno ts last_ts)
          else go (lineno + 1) (count + 1) ts
        | Some (J_str _), _ -> Error (Printf.sprintf "line %d: missing numeric \"ts\"" lineno)
        | _, _ -> Error (Printf.sprintf "line %d: missing string \"ev\"" lineno)
      end
      | Ok _ -> Error (Printf.sprintf "line %d: not a JSON object" lineno)
    end
  in
  go 1 0 neg_infinity

let validate_jsonl_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic -> Fun.protect ~finally:(fun () -> close_in ic) (fun () -> validate_jsonl ic)
