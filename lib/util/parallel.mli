(** Fork-join parallelism over a reusable pool of OCaml 5 domains.

    The annealers are embarrassingly parallel across reads: each read is an
    independent Markov chain with its own PRNG stream. This module provides
    the small fork-join helpers they need without pulling in domainslib
    (not available in the sealed container).

    Worker domains are spawned once into a process-wide {!Pool} and reused
    across calls — earlier revisions spawned fresh domains per call, which
    dominated wall-clock for short reads and made concurrent samplers
    (the portfolio) oversubscribe the machine. Callers pass [~domains:1]
    to run sequentially (the default), which is what tests use for full
    determinism of shared-PRNG call sites. *)

val recommended_domains : unit -> int
(** Number of domains worth using on this machine:
    [Domain.recommended_domain_count], capped at 16. *)

val partition : int -> int -> (int * int) list
(** [partition n d] splits [0, n) into at most [d] contiguous
    [(offset, length)] blocks whose lengths differ by at most one.
    Exposed for callers that schedule their own pool jobs. *)

(** A persistent pool of worker domains.

    Workers sleep between jobs; submitting work never spawns a domain.
    Acquisition is non-blocking: a submission that finds every worker busy
    simply runs on the calling domain, so nested parallel calls degrade to
    sequential instead of deadlocking. *)
module Pool : sig
  type t

  val create : int -> t
  (** [create n] spawns a pool of [n] worker domains ([n = 0] is legal:
      every job then runs on the caller). *)

  val global : unit -> t
  (** The process-wide shared pool, created on first use with
      [recommended_domains () - 1] workers (the calling domain is the
      remaining slot). Never shut down; idle workers sleep on a condition
      variable and cost nothing between calls. *)

  val size : t -> int
  (** Number of worker domains in the pool. *)

  val run_list : ?telemetry:Telemetry.t -> t -> (unit -> unit) list -> unit
  (** [run_list pool jobs] runs every job to completion, distributing them
      over idle workers plus the calling domain via a shared work index
      (a fast job's worker steals the next pending job). Returns when all
      jobs have finished. If any job raises, the first exception is
      re-raised in the caller — with the backtrace captured at the raise
      site — after the remaining jobs complete; the raising job's worker
      slot is released normally, so the pool stays fully reusable and no
      exception ever escapes on a worker domain.

      With an enabled [?telemetry] handle the call reports through the
      [pool.*] vocabulary: a [pool.jobs] counter, [pool.submit_latency_s]
      (submit→start) and [pool.queue_depth] histograms plus a
      [pool.queue_depth] gauge, one [pool.worker] event per participant
      (jobs run, busy and idle seconds — participant 0 is the calling
      domain), a [pool.worker_busy_s] histogram, [pool.utilization] and
      [pool.participants] gauges, and a closing [pool.stats] event. The
      untracked path is byte-identical to previous revisions. *)

  val shutdown : t -> unit
  (** [shutdown pool] terminates and joins the worker domains. Only needed
      for pools from {!create}; the {!global} pool lives for the process.
      Subsequent [run_list] calls on a shut-down pool run sequentially. *)
end

val map_array : ?telemetry:Telemetry.t -> ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ~domains f a] maps [f] over [a], splitting the work across
    up to [domains] blocks scheduled on the shared pool ([1] = sequential,
    the default). [f] must be safe to run concurrently on distinct
    elements. Preserves order. Exceptions raised by [f] are re-raised in
    the caller. An enabled [?telemetry] handle records the [pool.*]
    vocabulary of {!Pool.run_list}; the sequential path reports as one
    inline job run by the caller (utilization 1), so tracked solves
    always expose scheduling metrics. *)

val init_array : ?telemetry:Telemetry.t -> ?domains:int -> int -> (int -> 'a) -> 'a array
(** [init_array ~domains n f] is [Array.init n f] with the same parallel
    contract as {!map_array}. *)

val reduce :
  ?telemetry:Telemetry.t -> ?domains:int -> ('a -> 'b) -> ('b -> 'b -> 'b) -> 'b -> 'a array -> 'b
(** [reduce ~domains f combine zero a] maps then folds with [combine]
    (which must be associative); [zero] is the unit. *)
