(* The process-wide clamp lives behind a mutex: benches and the portfolio
   time concurrently from several domains, and a torn read of the last
   timestamp could let one domain observe a step backwards that another
   already smoothed over. One lock per reading is noise next to the
   work being timed (benches read the clock a handful of times per rep). *)

let mutex = Mutex.create ()
let epoch = Unix.gettimeofday ()
let last = ref 0.

let now () =
  Mutex.lock mutex;
  let raw = Unix.gettimeofday () -. epoch in
  let t = if raw > !last then raw else !last in
  last := t;
  Mutex.unlock mutex;
  t

let elapsed f =
  let t0 = now () in
  let r = f () in
  (now () -. t0, r)
