let recommended_domains () = min 16 (Domain.recommended_domain_count ())

(* Static block partition: worker [k] of [d] handles indices
   [lo_k, lo_k + size_k). All workers get within one element of each other,
   which is fine because per-element cost is uniform for our callers
   (identical annealing reads). *)
let partition n d =
  let d = max 1 (min d n) in
  let base = n / d and extra = n mod d in
  List.init d (fun k ->
      let lo = (k * base) + min k extra in
      let size = base + if k < extra then 1 else 0 in
      (lo, size))

module Pool = struct
  (* One long-lived domain per worker. A worker sleeps on its condition
     variable until a job is assigned, runs it, clears the slot, signals
     completion, and goes back to sleep — domains are spawned once per
     pool, not once per call. Jobs handed to [assign] must not raise;
     [run_list] wraps user jobs so exceptions travel back to the caller. *)
  type worker = {
    mutex : Mutex.t;
    cond : Condition.t;
    mutable job : (unit -> unit) option;
    mutable quit : bool;
  }

  type t = {
    workers : worker array;
    domains : unit Domain.t array;
    free : int Queue.t; (* indices of idle workers *)
    free_mutex : Mutex.t;
    mutable alive : bool;
  }

  let rec worker_loop w =
    Mutex.lock w.mutex;
    while w.job = None && not w.quit do
      Condition.wait w.cond w.mutex
    done;
    if w.quit then Mutex.unlock w.mutex
    else begin
      let job = Option.get w.job in
      Mutex.unlock w.mutex;
      (* Defensive catch-all: [run_list] wraps user jobs so they report
         exceptions through their own channel, but a job that raises
         anyway must not kill the worker domain — that would strand the
         slot forever (its index is back in [free], yet nobody would ever
         run or signal completion of the next job assigned to it). *)
      (try job () with _ -> ());
      Mutex.lock w.mutex;
      w.job <- None;
      Condition.broadcast w.cond;
      Mutex.unlock w.mutex;
      worker_loop w
    end

  let create n =
    let n = max 0 n in
    let workers =
      Array.init n (fun _ ->
          { mutex = Mutex.create (); cond = Condition.create (); job = None; quit = false })
    in
    let domains = Array.map (fun w -> Domain.spawn (fun () -> worker_loop w)) workers in
    let free = Queue.create () in
    Array.iteri (fun i _ -> Queue.push i free) workers;
    { workers; domains; free; free_mutex = Mutex.create (); alive = true }

  let size t = Array.length t.workers

  (* Grab up to [k] idle workers without blocking: callers always run part
     of the work themselves, so finding fewer (or zero) free workers only
     costs parallelism, never progress. This is also what makes nested
     parallel calls safe — an inner call simply finds the pool busy and
     degrades to sequential. *)
  let try_acquire t k =
    Mutex.lock t.free_mutex;
    let rec take k acc =
      if k = 0 || Queue.is_empty t.free then acc else take (k - 1) (Queue.pop t.free :: acc)
    in
    let ids = take (max 0 k) [] in
    Mutex.unlock t.free_mutex;
    ids

  let release t id =
    Mutex.lock t.free_mutex;
    Queue.push id t.free;
    Mutex.unlock t.free_mutex

  let assign t id job =
    let w = t.workers.(id) in
    Mutex.lock w.mutex;
    w.job <- Some job;
    Condition.broadcast w.cond;
    Mutex.unlock w.mutex

  let wait t id =
    let w = t.workers.(id) in
    Mutex.lock w.mutex;
    while w.job <> None do
      Condition.wait w.cond w.mutex
    done;
    Mutex.unlock w.mutex

  (* First exception wins; the remaining jobs still run (they may hold
     partial results the caller owns). The exception is captured together
     with its backtrace at the raise site — possibly on a worker domain —
     and re-raised on the caller with that backtrace attached, so a
     raising job reads like a raising function call, never a process
     abort. Every acquired worker is waited on and released whether or
     not jobs raised, so a raising job leaves the pool fully reusable. *)
  let run_list_plain t jobs =
    match jobs with
    | [] -> ()
    | [ job ] -> job ()
    | jobs ->
      let jobs = Array.of_list jobs in
      let n = Array.length jobs in
      let next = Atomic.make 0 in
      let error = Atomic.make None in
      let drain () =
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (try jobs.(i) ()
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set error None (Some (e, bt))));
            go ()
          end
        in
        go ()
      in
      let ids = if t.alive then try_acquire t (n - 1) else [] in
      List.iter (fun id -> assign t id drain) ids;
      drain ();
      List.iter
        (fun id ->
          wait t id;
          release t id)
        ids;
      (match Atomic.get error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())

  (* The instrumented twin: same scheduling (shared work index drained
     by the caller plus every acquired worker), plus pool.* vocabulary —
     per-job submit→start latency and queue depth, per-participant
     busy/idle split, and an overall utilization gauge. Participants are
     numbered 0 (the caller) .. k (acquired workers); each writes only
     its own slot of the local accumulators, and [wait]'s mutex
     round-trip publishes worker slots to the caller before they are
     read. Jobs are coarse (whole annealing reads or shards), so the
     per-job telemetry locking is noise. *)
  let run_list_traced tm t jobs =
    match jobs with
    | [] -> ()
    | jobs ->
      let submit = Mclock.now () in
      let jobs = Array.of_list jobs in
      let n = Array.length jobs in
      Telemetry.count tm "pool.jobs" n;
      let next = Atomic.make 0 in
      let started = Atomic.make 0 in
      let error = Atomic.make None in
      let ids = if t.alive then try_acquire t (n - 1) else [] in
      let parts = 1 + List.length ids in
      let busy = Array.make parts 0. in
      let ran = Array.make parts 0 in
      let drain who () =
        let t0 = Mclock.now () in
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            let tj = Mclock.now () in
            Telemetry.observe tm "pool.submit_latency_s" (tj -. submit);
            let pending = n - Atomic.fetch_and_add started 1 - 1 in
            Telemetry.gauge tm "pool.queue_depth" (float_of_int (max 0 pending));
            Telemetry.observe tm "pool.queue_depth" (float_of_int (max 0 pending));
            ran.(who) <- ran.(who) + 1;
            (try jobs.(i) ()
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set error None (Some (e, bt))));
            go ()
          end
        in
        go ();
        busy.(who) <- Mclock.now () -. t0
      in
      List.iteri (fun k id -> assign t id (drain (k + 1))) ids;
      drain 0 ();
      List.iter
        (fun id ->
          wait t id;
          release t id)
        ids;
      let wall = Mclock.now () -. submit in
      for who = 0 to parts - 1 do
        Telemetry.observe tm "pool.worker_busy_s" busy.(who);
        Telemetry.emit tm "pool.worker"
          [
            ("worker", Telemetry.Int who);
            ("jobs", Telemetry.Int ran.(who));
            ("busy_s", Telemetry.Float busy.(who));
            ("idle_s", Telemetry.Float (Float.max 0. (wall -. busy.(who))));
          ]
      done;
      let busy_total = Array.fold_left ( +. ) 0. busy in
      let util = if wall > 0. then busy_total /. (wall *. float_of_int parts) else 1. in
      Telemetry.gauge tm "pool.utilization" util;
      Telemetry.gauge tm "pool.participants" (float_of_int parts);
      Telemetry.emit tm "pool.stats"
        [
          ("jobs", Telemetry.Int n);
          ("participants", Telemetry.Int parts);
          ("wall_s", Telemetry.Float wall);
          ("busy_s", Telemetry.Float busy_total);
          ("utilization", Telemetry.Float util);
        ];
      (match Atomic.get error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())

  let run_list ?(telemetry = Telemetry.null) t jobs =
    if Telemetry.enabled telemetry then run_list_traced telemetry t jobs
    else run_list_plain t jobs

  let shutdown t =
    if t.alive then begin
      t.alive <- false;
      Array.iter
        (fun w ->
          Mutex.lock w.mutex;
          w.quit <- true;
          Condition.broadcast w.cond;
          Mutex.unlock w.mutex)
        t.workers;
      Array.iter Domain.join t.domains;
      Mutex.lock t.free_mutex;
      Queue.clear t.free;
      Mutex.unlock t.free_mutex
    end

  (* The process-wide shared pool, sized so that the caller plus all
     workers saturate the machine. Created on first parallel call and
     never shut down (worker domains sleep between calls). *)
  let shared = ref None
  let shared_mutex = Mutex.create ()

  let global () =
    Mutex.lock shared_mutex;
    let pool =
      match !shared with
      | Some pool -> pool
      | None ->
        let pool = create (recommended_domains () - 1) in
        shared := Some pool;
        pool
    in
    Mutex.unlock shared_mutex;
    pool
end

let init_array ?(telemetry = Telemetry.null) ?(domains = 1) n f =
  if n = 0 then [||]
  else if domains <= 1 || n = 1 then begin
    (* Sequential fast path: no pool, no Option boxing. When tracked it
       still reports through the pool.* vocabulary as one inline job run
       by the caller, so every solve exposes scheduling metrics whether
       or not it parallelised. *)
    if Telemetry.enabled telemetry then begin
      let t0 = Mclock.now () in
      Telemetry.count telemetry "pool.jobs" 1;
      Telemetry.observe telemetry "pool.submit_latency_s" 0.;
      Telemetry.gauge telemetry "pool.queue_depth" 0.;
      Telemetry.observe telemetry "pool.queue_depth" 0.;
      let r = Array.init n f in
      let busy = Mclock.now () -. t0 in
      Telemetry.observe telemetry "pool.worker_busy_s" busy;
      Telemetry.emit telemetry "pool.worker"
        [
          ("worker", Telemetry.Int 0);
          ("jobs", Telemetry.Int 1);
          ("busy_s", Telemetry.Float busy);
          ("idle_s", Telemetry.Float 0.);
        ];
      Telemetry.gauge telemetry "pool.utilization" 1.;
      Telemetry.gauge telemetry "pool.participants" 1.;
      r
    end
    else Array.init n f
  end
  else begin
    let results = Array.make n None in
    let work (lo, size) () =
      for i = lo to lo + size - 1 do
        results.(i) <- Some (f i)
      done
    in
    Pool.run_list ~telemetry (Pool.global ()) (List.map work (partition n domains));
    (* run_list re-raises the first job exception, so a hole here means a
       scheduling bug, not a user error — report it as such rather than
       aborting the process with an assertion. *)
    Array.map
      (function
        | Some v -> v
        | None -> failwith "Parallel.init_array: a worker job produced no result")
      results
  end

let map_array ?telemetry ?(domains = 1) f a =
  init_array ?telemetry ~domains (Array.length a) (fun i -> f a.(i))

let reduce ?telemetry ?(domains = 1) f combine zero a =
  let mapped = map_array ?telemetry ~domains f a in
  Array.fold_left combine zero mapped
