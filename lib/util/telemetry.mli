(** Unified observability for the solve pipeline.

    One event vocabulary replaces the ad-hoc records the layers grew
    independently ([Solver.stage_timing], bench-side TTS math, hand-rolled
    hardware stats printing): monotonic spans with parent/child nesting,
    named counters, streaming histograms, and point events, all pushed
    through a pluggable sink. Three sinks are built in:

    - {!null} — disabled. Every operation starts with one physical
      comparison against this handle and returns; instrumented hot paths
      pay nothing measurable when telemetry is off.
    - {!collector} — in-memory event buffer, what tests read back.
    - {!jsonl} / {!with_jsonl} — streaming JSONL writer, what the CLI's
      [--trace FILE] and CI artifacts use. One event per line, timestamps
      strictly monotone (wall-clock reads are clamped so a stepped clock
      can never produce an out-of-order trace).

    Handles are domain-safe: a single mutex orders sink writes and
    aggregate updates, and span ids come from an atomic counter, so the
    portfolio's concurrent members can all log into one trace. Aggregates
    (counters, histogram moments, per-name span totals) are maintained on
    the handle for every non-null sink, which is what the CLI's
    [--metrics] summary table prints without needing to re-read the
    event stream.

    Event vocabulary (the names instrumented code emits) is documented in
    DESIGN.md §Telemetry; the invariants the validator checks are:
    every line parses as a JSON object, has a string ["ev"] and a float
    ["ts"], and the ["ts"] sequence is non-decreasing. *)

type t
(** A telemetry handle: sink + aggregate state. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  ts : float;  (** seconds since the handle was created, non-decreasing *)
  ev : string;  (** event name, e.g. ["span.begin"], ["sa.sweep"] *)
  span : int;  (** owning span id, [-1] when none *)
  parent : int;  (** parent span id, [-1] when none *)
  fields : (string * value) list;
}

(* ------------------------------------------------------------------ *)
(** {1 Handles} *)

val null : t
(** The disabled handle. All operations are no-ops; {!enabled} is
    [false]. This is the default everywhere a [?telemetry] argument is
    omitted. *)

val enabled : t -> bool
(** [false] only for {!null}. Instrumentation sites with a per-iteration
    cost hoist this check out of their loops. *)

val collector : unit -> t
(** In-memory sink; read back with {!events}. *)

val aggregate_only : unit -> t
(** Enabled handle that keeps counters / histograms / span totals but
    discards the event stream — what [--metrics] without [--trace]
    uses. *)

val jsonl : out_channel -> t
(** Streams each event to the channel as one JSON object per line. The
    caller owns the channel; call {!flush} before closing it. *)

val with_jsonl : string -> (t -> 'a) -> 'a
(** [with_jsonl path f] opens [path], runs [f] with a {!jsonl} handle,
    then flushes (appending counter / histogram summary events) and
    closes — also on exception. *)

(* ------------------------------------------------------------------ *)
(** {1 Spans} *)

type span
(** A started span. Copies of the value are cheap and immutable. *)

val no_span : span
(** The absent parent (also what {!span} returns on {!null}). *)

val span : t -> ?parent:span -> string -> span
(** Starts a span and emits [span.begin]. *)

val finish : t -> span -> unit
(** Emits [span.end] with a [dur_s] field and folds the duration into the
    per-name span aggregate. Finishing {!no_span} or a span of a
    different handle is a no-op. *)

val with_span : t -> ?parent:span -> string -> (span -> 'a) -> 'a
(** [with_span t name f] brackets [f] in {!span}/{!finish}; the span is
    finished also when [f] raises. *)

(* ------------------------------------------------------------------ *)
(** {1 Counters, histograms, point events} *)

val count : t -> string -> int -> unit
(** [count t name n] adds [n] to the named counter. Aggregate-only: no
    event is emitted until {!flush}, so counting in a loop is cheap. *)

val observe : t -> string -> float -> unit
(** Streaming histogram: folds the observation into running
    count/min/max/mean/variance (Welford) plus p50/p90/p99 quantile
    estimates (P² markers: O(1) memory, deterministic, exact for the
    first five observations). Summarised at {!flush}. *)

val gauge : t -> string -> float -> unit
(** [gauge t name x] sets the named gauge to its latest value
    (last-write-wins; e.g. [pool.utilization], [sa.sweeps_per_s]).
    Emitted as one [gauge] event per name at {!flush}. *)

val emit : t -> ?span:span -> string -> (string * value) list -> unit
(** A point event (e.g. one [sa.sweep] of an energy trajectory). *)

val flush : t -> unit
(** Emits one [counter] event per counter and one [hist] event per
    histogram (then clears neither — flushing twice re-emits totals),
    and flushes the channel for {!jsonl} handles. No-op on {!null}. *)

(* ------------------------------------------------------------------ *)
(** {1 Reading aggregates back} *)

val events : t -> event list
(** Events recorded so far, oldest first. Empty unless the handle is a
    {!collector}. *)

val counters : t -> (string * int) list
(** Counter totals, sorted by name. *)

type hist_summary = {
  h_count : int;
  h_min : float;
  h_max : float;
  h_mean : float;
  h_stddev : float;
  h_p50 : float;  (** median estimate; exact when [h_count <= 5] *)
  h_p90 : float;
  h_p99 : float;
}

val histograms : t -> (string * hist_summary) list
(** Histogram summaries, sorted by name. *)

val gauges : t -> (string * float) list
(** Latest gauge values, sorted by name. *)

val span_totals : t -> (string * int * float) list
(** Per span name: (name, finished count, total seconds), sorted by
    name. *)

val find_counter : t -> string -> int option

(* ------------------------------------------------------------------ *)
(** {1 Snapshot and Prometheus-style exposition} *)

type snapshot = {
  snap_elapsed_s : float;  (** seconds since the handle was created *)
  snap_phase : string option;  (** most recently begun still-open span *)
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_hists : (string * hist_summary) list;
  snap_spans : (string * int * float) list;
  snap_open_spans : (string * int) list;  (** open span count per name *)
}
(** A consistent cut of every aggregate, all lists sorted by name. *)

val snapshot : t -> snapshot
(** Takes the handle's lock once and reads all aggregates atomically —
    safe to call from a progress-reporter domain while samplers are
    emitting. On {!null} returns an empty snapshot. *)

val expose_text : snapshot -> string
(** Renders the snapshot in Prometheus text exposition format: metric
    names are the event vocabulary sanitised to [[a-zA-Z0-9_]] with a
    [qsmt_] prefix; counters get [_total], histograms render as
    summaries with [quantile="0.5"|"0.9"|"0.99"] lines plus
    [_sum]/[_count]/[_min]/[_max], span totals as
    [qsmt_span_seconds_total{span="…"}]. Output order is deterministic
    (sorted by name). *)

val snapshot_of_jsonl : in_channel -> (snapshot, string) result
(** Rebuilds a {!snapshot} from a flushed JSONL trace: counters, gauges
    and histogram summaries from the flush-emitted summary events (last
    flush wins), span totals re-accumulated from the [span.end] stream.
    What [qsmt metrics TRACE] prints. *)

val snapshot_of_jsonl_file : string -> (snapshot, string) result

(* ------------------------------------------------------------------ *)
(** {1 Resource probes} *)

val with_gc_probe : t -> ?span:span -> (unit -> 'a) -> 'a
(** [with_gc_probe t f] samples [Gc.quick_stat] around [f] and records
    the delta: counters [gc.minor_collections] / [gc.major_collections],
    histograms [gc.minor_words] / [gc.major_words] / [gc.promoted_words],
    gauge [gc.heap_words], and one [gc.delta] point event. On OCaml 5
    the word counts are domain-local, so multi-domain phases report the
    orchestrating domain's share. No-op on {!null}. *)

(* ------------------------------------------------------------------ *)
(** {1 JSONL encoding / validation} *)

val event_to_json : event -> string
(** One-line JSON object: [{"ts":…,"ev":…,"span":…,"parent":…,…fields}].
    [span]/[parent] are omitted when [-1]; field names must not collide
    with the reserved keys (["ts"], ["ev"], ["span"], ["parent"]). *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list
      (** Parsed JSON. Object members keep their document order. *)

val parse_json : string -> (json, string) result
(** Full-document JSON reader (objects, arrays, strings with escapes,
    numbers, literals; insignificant whitespace allowed anywhere, so
    pretty-printed multi-line documents parse too). Used line-wise by the
    trace validator and whole-file by the benches to read their committed
    [BENCH_*.json] baselines back without an external JSON dependency. *)

val validate_jsonl : in_channel -> (int, string) result
(** Reads a trace produced by a {!jsonl} handle and checks the contract:
    every non-empty line is a well-formed JSON object with a string
    ["ev"] and a float ["ts"], timestamps never decrease, and the span
    stream is balanced — every [span.begin] carries a fresh id and an
    open (or absent) parent, every [span.end] closes an open id with a
    matching name and no still-open children, and nothing is left open
    at end of input. Returns the number of events, or a message naming
    the first offending line. *)

val validate_jsonl_file : string -> (int, string) result

val export_chrome : in_channel -> out_channel -> (int, string) result
(** Converts a JSONL trace to Chrome trace-event JSON (loadable in
    Perfetto / chrome://tracing): spans become ["X"] complete events
    with lanes ("tid"s) assigned so overlapping spans land on separate
    rows, point events become instants on their owning span's lane, and
    counter/gauge summaries become ["C"] counter tracks. Returns the
    number of trace events written, or a message naming the first
    offending input line. *)

val export_chrome_file : src:string -> dst:string -> (int, string) result
