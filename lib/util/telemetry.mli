(** Unified observability for the solve pipeline.

    One event vocabulary replaces the ad-hoc records the layers grew
    independently ([Solver.stage_timing], bench-side TTS math, hand-rolled
    hardware stats printing): monotonic spans with parent/child nesting,
    named counters, streaming histograms, and point events, all pushed
    through a pluggable sink. Three sinks are built in:

    - {!null} — disabled. Every operation starts with one physical
      comparison against this handle and returns; instrumented hot paths
      pay nothing measurable when telemetry is off.
    - {!collector} — in-memory event buffer, what tests read back.
    - {!jsonl} / {!with_jsonl} — streaming JSONL writer, what the CLI's
      [--trace FILE] and CI artifacts use. One event per line, timestamps
      strictly monotone (wall-clock reads are clamped so a stepped clock
      can never produce an out-of-order trace).

    Handles are domain-safe: a single mutex orders sink writes and
    aggregate updates, and span ids come from an atomic counter, so the
    portfolio's concurrent members can all log into one trace. Aggregates
    (counters, histogram moments, per-name span totals) are maintained on
    the handle for every non-null sink, which is what the CLI's
    [--metrics] summary table prints without needing to re-read the
    event stream.

    Event vocabulary (the names instrumented code emits) is documented in
    DESIGN.md §Telemetry; the invariants the validator checks are:
    every line parses as a JSON object, has a string ["ev"] and a float
    ["ts"], and the ["ts"] sequence is non-decreasing. *)

type t
(** A telemetry handle: sink + aggregate state. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  ts : float;  (** seconds since the handle was created, non-decreasing *)
  ev : string;  (** event name, e.g. ["span.begin"], ["sa.sweep"] *)
  span : int;  (** owning span id, [-1] when none *)
  parent : int;  (** parent span id, [-1] when none *)
  fields : (string * value) list;
}

(* ------------------------------------------------------------------ *)
(** {1 Handles} *)

val null : t
(** The disabled handle. All operations are no-ops; {!enabled} is
    [false]. This is the default everywhere a [?telemetry] argument is
    omitted. *)

val enabled : t -> bool
(** [false] only for {!null}. Instrumentation sites with a per-iteration
    cost hoist this check out of their loops. *)

val collector : unit -> t
(** In-memory sink; read back with {!events}. *)

val aggregate_only : unit -> t
(** Enabled handle that keeps counters / histograms / span totals but
    discards the event stream — what [--metrics] without [--trace]
    uses. *)

val jsonl : out_channel -> t
(** Streams each event to the channel as one JSON object per line. The
    caller owns the channel; call {!flush} before closing it. *)

val with_jsonl : string -> (t -> 'a) -> 'a
(** [with_jsonl path f] opens [path], runs [f] with a {!jsonl} handle,
    then flushes (appending counter / histogram summary events) and
    closes — also on exception. *)

(* ------------------------------------------------------------------ *)
(** {1 Spans} *)

type span
(** A started span. Copies of the value are cheap and immutable. *)

val no_span : span
(** The absent parent (also what {!span} returns on {!null}). *)

val span : t -> ?parent:span -> string -> span
(** Starts a span and emits [span.begin]. *)

val finish : t -> span -> unit
(** Emits [span.end] with a [dur_s] field and folds the duration into the
    per-name span aggregate. Finishing {!no_span} or a span of a
    different handle is a no-op. *)

val with_span : t -> ?parent:span -> string -> (span -> 'a) -> 'a
(** [with_span t name f] brackets [f] in {!span}/{!finish}; the span is
    finished also when [f] raises. *)

(* ------------------------------------------------------------------ *)
(** {1 Counters, histograms, point events} *)

val count : t -> string -> int -> unit
(** [count t name n] adds [n] to the named counter. Aggregate-only: no
    event is emitted until {!flush}, so counting in a loop is cheap. *)

val observe : t -> string -> float -> unit
(** Streaming histogram: folds the observation into running
    count/min/max/mean/variance (Welford). Summarised at {!flush}. *)

val emit : t -> ?span:span -> string -> (string * value) list -> unit
(** A point event (e.g. one [sa.sweep] of an energy trajectory). *)

val flush : t -> unit
(** Emits one [counter] event per counter and one [hist] event per
    histogram (then clears neither — flushing twice re-emits totals),
    and flushes the channel for {!jsonl} handles. No-op on {!null}. *)

(* ------------------------------------------------------------------ *)
(** {1 Reading aggregates back} *)

val events : t -> event list
(** Events recorded so far, oldest first. Empty unless the handle is a
    {!collector}. *)

val counters : t -> (string * int) list
(** Counter totals, sorted by name. *)

type hist_summary = {
  h_count : int;
  h_min : float;
  h_max : float;
  h_mean : float;
  h_stddev : float;
}

val histograms : t -> (string * hist_summary) list
(** Histogram summaries, sorted by name. *)

val span_totals : t -> (string * int * float) list
(** Per span name: (name, finished count, total seconds), sorted by
    name. *)

val find_counter : t -> string -> int option

(* ------------------------------------------------------------------ *)
(** {1 JSONL encoding / validation} *)

val event_to_json : event -> string
(** One-line JSON object: [{"ts":…,"ev":…,"span":…,"parent":…,…fields}].
    [span]/[parent] are omitted when [-1]; field names must not collide
    with the reserved keys (["ts"], ["ev"], ["span"], ["parent"]). *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list
      (** Parsed JSON. Object members keep their document order. *)

val parse_json : string -> (json, string) result
(** Full-document JSON reader (objects, arrays, strings with escapes,
    numbers, literals; insignificant whitespace allowed anywhere, so
    pretty-printed multi-line documents parse too). Used line-wise by the
    trace validator and whole-file by the benches to read their committed
    [BENCH_*.json] baselines back without an external JSON dependency. *)

val validate_jsonl : in_channel -> (int, string) result
(** Reads a trace produced by a {!jsonl} handle and checks the contract:
    every non-empty line is a well-formed JSON object with a string
    ["ev"] and a float ["ts"], and timestamps never decrease. Returns the
    number of events, or a message naming the first offending line. *)

val validate_jsonl_file : string -> (int, string) result
