(** Monotone process clock for interval timing.

    [Unix.gettimeofday] is wall time: NTP slews, manual clock steps and
    leap smearing can move it backwards mid-measurement, turning a bench
    interval negative or wildly wrong. The OCaml runtime this repository
    pins (no [mtime]-style C stubs available) exposes no raw
    [CLOCK_MONOTONIC], so this module provides the same guarantee the
    telemetry layer already enforces for trace timestamps: readings are
    clamped to be non-decreasing across the whole process, so intervals
    are never negative and a backwards clock step costs at most the
    stalled interval, not a corrupted one. All benches time through
    {!now} rather than calling [Unix.gettimeofday] directly. *)

val now : unit -> float
(** Seconds since the first load of this module, non-decreasing across
    all domains. Resolution is that of [Unix.gettimeofday] (~1µs). *)

val elapsed : (unit -> 'a) -> float * 'a
(** [elapsed f] runs [f] and returns its non-negative duration in
    seconds together with its result. *)
