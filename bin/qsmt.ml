(* qsmt — command-line front end for the quantum-annealing string solver.

   Subcommands:
     qsmt run FILE.smt2        execute an SMT-LIB script
     qsmt repl                 interactive incremental session on stdin
     qsmt gen OP ARGS          generate a string for one operation
     qsmt lint OP ARGS         statically analyze an encoding, no sampling
     qsmt analyze OP ARGS      abstract-interpret constraints before encoding
     qsmt matrix OP ARGS       print the QUBO matrix for one operation
     qsmt trace FILE.jsonl     validate a telemetry trace
     qsmt samplers             list available samplers

   `qsmt gen --help` documents the operations. *)

module Constr = Qsmt_strtheory.Constr
module Solver = Qsmt_strtheory.Solver
module Compile = Qsmt_strtheory.Compile
module Params = Qsmt_strtheory.Params
module Lint = Qsmt_strtheory.Lint
module Absint = Qsmt_strtheory.Absint
module Workload = Qsmt_strtheory.Workload
module Analyze = Qsmt_qubo.Analyze
module Qubo = Qsmt_qubo.Qubo
module Qubo_print = Qsmt_qubo.Qubo_print
module Sampler = Qsmt_anneal.Sampler
module Sa = Qsmt_anneal.Sa
module Hardware = Qsmt_anneal.Hardware
module Topology = Qsmt_anneal.Topology
module Sqa = Qsmt_anneal.Sqa
module Tabu = Qsmt_anneal.Tabu
module Greedy = Qsmt_anneal.Greedy
module Portfolio = Qsmt_anneal.Portfolio
module Interp = Qsmt_smtlib.Interp
module Eval = Qsmt_smtlib.Eval
module Ast = Qsmt_smtlib.Ast
module Parser = Qsmt_smtlib.Parser
module Strsolver = Qsmt_classical.Strsolver
module Smtgen = Qsmt_strtheory.Smtgen
module Qubo_io = Qsmt_qubo.Qubo_io
module Dimacs = Qsmt_classical.Dimacs
module Bitblast = Qsmt_classical.Bitblast
module Telemetry = Qsmt_util.Telemetry
module Sampleset = Qsmt_anneal.Sampleset
module Metrics = Qsmt_anneal.Metrics

open Cmdliner

(* ------------------------------------------------------------------ *)
(* shared options *)

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed (results are deterministic per seed).")

let reads_arg =
  Arg.(value & opt int 32 & info [ "reads" ] ~docv:"N" ~doc:"Annealing reads (independent runs).")

let sweeps_arg =
  Arg.(value & opt int 1000 & info [ "sweeps" ] ~docv:"N" ~doc:"Metropolis sweeps per read.")

let domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Parallel domains for reads.")

let packed_arg =
  Arg.(
    value & flag
    & info [ "packed" ]
        ~doc:
          "Run simulated annealing through the bit-parallel multi-spin kernel: reads are packed \
           64 to a machine word, so one memory pass per sweep advances a whole group of reads. \
           With $(b,--sampler sa) the annealer itself switches kernels; with $(b,--sampler \
           portfolio) an $(b,sa_packed) member joins the race. Other samplers ignore the flag \
           (SQA and PT already run packed internally at their default widths).")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Concurrent portfolio members (0 = one per available core). Only meaningful with $(b,--sampler portfolio).")

let budget_arg =
  let positive_float =
    let parse s =
      match float_of_string_opt s with
      | Some b when b > 0. -> Ok b
      | Some _ -> Error (`Msg "budget must be positive")
      | None -> Error (`Msg (s ^ " is not a number"))
    in
    Arg.conv (parse, Format.pp_print_float)
  in
  Arg.(
    value & opt (some positive_float) None
    & info [ "budget" ] ~docv:"SECONDS"
        ~doc:"Per-member wall-clock budget for the portfolio sampler; members exceeding it are cancelled cooperatively.")

let decompose_arg =
  Arg.(
    value & flag
    & info [ "decompose" ]
        ~doc:
          "Solve through qbsolv-style decomposition: shard the interaction graph into \
           subproblems of at most $(b,--subsize) variables, solve shards concurrently with the \
           selected sampler, and iterate the boundary spins to convergence. Problems already \
           fitting one shard bypass decomposition and run the sampler unchanged (bit-identical \
           samples). Not available with $(b,--sampler classical).")

let subsize_arg =
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ -> Error (`Msg "subsize must be >= 1")
      | None -> Error (`Msg (s ^ " is not an integer"))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value & opt positive_int 48
    & info [ "subsize" ] ~docv:"N"
        ~doc:
          "Largest decomposition shard, in variables (with $(b,--decompose); default 48). Also \
           the fit-in-one-shard threshold below which decomposition is bypassed.")

let sampler_arg =
  let choices =
    [ ("sa", `Sa); ("sqa", `Sqa); ("tabu", `Tabu); ("greedy", `Greedy); ("exact", `Exact);
      ("hardware", `Hardware); ("portfolio", `Portfolio); ("classical", `Classical) ]
  in
  Arg.(
    value
    & opt (enum choices) `Sa
    & info [ "sampler" ] ~docv:"NAME"
        ~doc:"Solver backend: $(b,sa) (simulated annealing), $(b,sqa) (simulated quantum annealing), $(b,tabu), $(b,greedy), $(b,exact) (exhaustive, small problems), $(b,hardware) (QPU-workflow emulation: minor embedding into $(b,--topology), chain penalties, control noise, adaptive chain strength), $(b,portfolio) (race sa/sqa/pt/tabu/greedy concurrently, first verified read wins), $(b,classical) (CDCL bit-blasting).")

let topology_arg =
  Arg.(
    value
    & opt (enum [ ("chimera", `Chimera); ("king", `King); ("complete", `Complete) ]) `Chimera
    & info [ "topology" ] ~docv:"NAME"
        ~doc:
          "Hardware graph family for $(b,--sampler hardware): $(b,chimera) (D-Wave 2000Q-style \
           C(m,m,4)), $(b,king) (8-neighbor grid, CMOS annealers), $(b,complete) (all-to-all; \
           embedding becomes the identity).")

let topology_size_arg =
  Arg.(
    value & opt int 0
    & info [ "topology-size" ] ~docv:"N"
        ~doc:
          "Grid parameter for $(b,--topology) (chimera m / king side / complete qubit count). 0 \
           (default) grows the smallest grid the problem embeds into.")

let chain_strength_arg =
  Arg.(
    value & opt (some float) None
    & info [ "chain-strength" ] ~docv:"C"
        ~doc:
          "Starting ferromagnetic chain penalty for $(b,--sampler hardware) (default: 2 x the \
           largest |coefficient|). The adaptive loop escalates it geometrically while chains \
           break too often.")

let noise_arg =
  Arg.(
    value & opt float 0.
    & info [ "noise" ] ~docv:"SIGMA"
        ~doc:
          "Gaussian control-noise std-dev on every physical coefficient, relative to the largest \
           |coefficient| ($(b,--sampler hardware) only; default 0 = ideal hardware).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL telemetry trace of the whole solve pipeline (encode/sample/decode spans, \
           sweep-level sampler events, portfolio lifecycle) to $(docv), one JSON object per line. \
           Validate with $(b,qsmt trace FILE).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print a telemetry summary (span totals, counters, gauges, histograms, \
           time-to-solution) after solving. Works with or without $(b,--trace).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the final metrics snapshot (counters, gauges, histograms with p50/p90/p99 \
           quantiles, span totals) to $(docv) in Prometheus text exposition format. Works with \
           or without $(b,--trace).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Print a one-line status to stderr every half second while solving (phase, reads, \
           sweeps, best energy so far, pool utilization), read from the telemetry snapshot \
           without perturbing the trace. Interval override: QSMT_PROGRESS_INTERVAL_S.")

(* --param KEY=VALUE, repeatable. Each assignment is validated through
   Params.validate at parse time, so `--param soft=inf` dies as a CLI
   error (exit 124) with the typed message instead of compiling a QUBO
   full of garbage coefficients. *)
let param_arg =
  let assign =
    let parse s =
      match String.index_opt s '=' with
      | None -> Error (`Msg (Printf.sprintf "%s: expected KEY=VALUE (keys: a strong soft b d)" s))
      | Some eq -> begin
        let key = String.sub s 0 eq in
        let v = String.sub s (eq + 1) (String.length s - eq - 1) in
        match float_of_string_opt v with
        | None -> Error (`Msg (Printf.sprintf "%s is not a number" v))
        | Some value -> begin
          let update p =
            match key with
            | "a" -> Some { p with Params.a = value }
            | "strong" -> Some { p with Params.strong_scale = value }
            | "soft" -> Some { p with Params.soft_scale = value }
            | "b" -> Some { p with Params.includes_b = value }
            | "d" -> Some { p with Params.includes_d = value }
            | _ -> None
          in
          match update Params.default with
          | None -> Error (`Msg (Printf.sprintf "unknown parameter %S (keys: a strong soft b d)" key))
          | Some probe -> begin
            match Params.validate probe with
            | Error inv -> Error (`Msg (Params.invalid_message inv))
            | Ok () -> Ok (s, update)
          end
        end
      end
    in
    Arg.conv (parse, fun ppf (s, _) -> Format.pp_print_string ppf s)
  in
  Arg.(
    value & opt_all assign []
    & info [ "param" ] ~docv:"KEY=VALUE"
        ~doc:
          "Override an encoding strength: $(b,a) (base penalty), $(b,strong) (forced-position \
           multiplier), $(b,soft) (soft-bias multiplier), $(b,b) (includes one-hot penalty), \
           $(b,d) (includes first-match increment). Repeatable; values must be finite and \
           positive.")

let params_of_assignments assigns =
  match assigns with
  | [] -> None
  | _ ->
    Some
      (List.fold_left
         (fun p (_, update) -> match update p with Some p -> p | None -> p)
         Params.default assigns)

let lint_level_arg =
  Arg.(
    value
    & opt (enum [ ("off", `Off); ("error", `Error); ("warning", `Warning) ]) `Off
    & info [ "lint-level" ] ~docv:"LEVEL"
        ~doc:
          "Run the static encoding linter between encoding and sampling and refuse to sample \
           when any finding reaches $(docv) ($(b,error) or $(b,warning); default $(b,off)). See \
           $(b,qsmt lint).")

let no_absint_arg =
  Arg.(
    value & flag
    & info [ "no-absint" ]
        ~doc:
          "Disable the pre-encode abstract interpreter: no static verdicts, no statically-forced \
           codec bits clamped out of the anneal — reproduces the unshrunk QUBO pipeline \
           bit-exactly. See $(b,qsmt analyze).")

(* The --metrics summary table: reads the aggregates maintained on the
   handle, so it needs no event stream (aggregate-only handles discard
   it). [tts] rides along from the caller because time-to-solution needs
   the outcome, not just the aggregates. *)
let print_metrics ?tts t =
  let spans = Telemetry.span_totals t in
  if spans <> [] then begin
    Format.printf "metrics   : spans (count, total)@.";
    List.iter
      (fun (name, n, total) -> Format.printf "  %-26s %6d %10.2fms@." name n (1e3 *. total))
      spans
  end;
  let counters = Telemetry.counters t in
  if counters <> [] then begin
    Format.printf "metrics   : counters@.";
    List.iter (fun (name, v) -> Format.printf "  %-26s %6d@." name v) counters
  end;
  let gauges = Telemetry.gauges t in
  if gauges <> [] then begin
    Format.printf "metrics   : gauges@.";
    List.iter (fun (name, v) -> Format.printf "  %-26s %10.4g@." name v) gauges
  end;
  let hists = Telemetry.histograms t in
  if hists <> [] then begin
    Format.printf "metrics   : histograms (count, min, p50, mean, max)@.";
    List.iter
      (fun (name, h) ->
        Format.printf "  %-26s %6d %10.4g %10.4g %10.4g %10.4g@." name h.Telemetry.h_count
          h.Telemetry.h_min h.Telemetry.h_p50 h.Telemetry.h_mean h.Telemetry.h_max)
      hists
  end;
  match tts with
  | None -> ()
  | Some (p_success, time_per_read, tts) ->
    Format.printf "metrics   : time-to-solution@.";
    Format.printf "  p_success                  %10.3f@." p_success;
    Format.printf "  time_per_read              %8.3fms@." (1e3 *. time_per_read);
    Format.printf "  tts(99%%)                   %10s@." (Format.asprintf "%a" Metrics.pp_tts tts)

(* ------------------------------------------------------------------ *)
(* Live progress reporter *)

let progress_interval () =
  match Option.bind (Sys.getenv_opt "QSMT_PROGRESS_INTERVAL_S") float_of_string_opt with
  | Some x when x > 0. -> x
  | _ -> 0.5

(* One status line from a snapshot: current phase (innermost open span),
   reads/sweeps so far (summed over the per-sampler counters), best
   energy seen (min over the *.read_energy histograms — sets are sorted
   so this is the best sampled read), and pool utilization. *)
let progress_line ?(final = false) snap =
  let counter_sum suffix =
    List.fold_left
      (fun acc (name, n) -> if String.ends_with ~suffix name then acc + n else acc)
      0 snap.Telemetry.snap_counters
  in
  let best =
    List.fold_left
      (fun acc (name, h) ->
        if String.ends_with ~suffix:".read_energy" name && h.Telemetry.h_count > 0 then
          Some (match acc with Some b -> Float.min b h.Telemetry.h_min | None -> h.Telemetry.h_min)
        else acc)
      None snap.Telemetry.snap_hists
  in
  let pool = List.assoc_opt "pool.utilization" snap.Telemetry.snap_gauges in
  let phase =
    match snap.Telemetry.snap_phase with
    | Some p -> p
    | None -> if final then "done" else "idle"
  in
  Printf.sprintf "[progress] t=%.1fs phase=%s reads=%d sweeps=%d best=%s pool=%s"
    snap.Telemetry.snap_elapsed_s phase (counter_sum ".reads") (counter_sum ".sweeps")
    (match best with Some e -> Printf.sprintf "%g" e | None -> "-")
    (match pool with Some u -> Printf.sprintf "%.2f" u | None -> "-")

(* The reporter runs on its own domain and only ever reads snapshots
   (one lock acquisition each), so it observes the solve without
   perturbing the trace: no events, no counters, no PRNG draws. A final
   line is always printed so short solves still report. *)
let with_progress enabled t f =
  if not enabled then f ()
  else begin
    let stop = Atomic.make false in
    let ticker =
      Domain.spawn (fun () ->
          let interval = progress_interval () in
          let rec loop since =
            if not (Atomic.get stop) then begin
              (* sleep in short slices so stopping never waits a full interval *)
              Unix.sleepf (Float.min 0.05 interval);
              let since = since +. Float.min 0.05 interval in
              if since >= interval then begin
                prerr_endline (progress_line (Telemetry.snapshot t));
                loop 0.
              end
              else loop since
            end
          in
          loop 0.)
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Domain.join ticker;
        prerr_endline (progress_line ~final:true (Telemetry.snapshot t)))
      f
  end

(* Threads a telemetry handle matching --trace/--metrics/--metrics-out/
   --progress through [f]: JSONL writer when tracing (flushed with
   counter/gauge/histogram summaries on the way out), aggregate-only
   when any of the other switches need live aggregates, {!Telemetry.null}
   otherwise. [tts_of] derives the summary's TTS row from f's result. *)
let with_telemetry ~trace ~metrics ?(metrics_out = None) ?(progress = false) ?tts_of f =
  let summarize t r =
    if metrics then
      print_metrics ?tts:(match tts_of with None -> None | Some g -> g r) t;
    (match metrics_out with
    | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Telemetry.expose_text (Telemetry.snapshot t)))
    | None -> ());
    r
  in
  let f t = with_progress progress t (fun () -> f t) in
  match trace with
  | Some path -> Telemetry.with_jsonl path (fun t -> summarize t (f t))
  | None when metrics || metrics_out <> None || progress ->
    let t = Telemetry.aggregate_only () in
    summarize t (f t)
  | None -> f Telemetry.null

(* Callers must route [`Classical] to the CDCL bit-blasting path before
   coming here — it is a different solver family, not a sampler, and an
   earlier revision silently handed such requests to [Sampler.exact]. *)
let build_sampler kind ~seed ~reads ~sweeps ~domains ~jobs ~budget ~topology ~topology_size
    ~chain_strength ~noise ~packed ~decompose ~subsize =
  let base =
    match kind with
  | `Sa ->
    let params = { Sa.default with Sa.seed; reads; sweeps; domains } in
    if packed then Sampler.simulated_annealing_packed ~params ()
    else Sampler.simulated_annealing ~params ()
  | `Sqa ->
    Sampler.simulated_quantum_annealing
      ~params:{ Sqa.default with Sqa.seed; sweeps = max 1 (sweeps / 2); reads; domains } ()
  | `Tabu -> Sampler.tabu ~params:{ Tabu.default with Tabu.seed; restarts = reads; iterations = sweeps } ()
  | `Greedy ->
    ignore Greedy.default;
    Sampler.greedy ~params:{ Greedy.seed; restarts = reads; domains } ()
  | `Exact -> Sampler.exact ()
  | `Hardware ->
    (* Parameters are derived per problem: auto-sizing needs the compiled
       QUBO, which only exists once the constraint is encoded. *)
    Sampler.hardware_auto (fun q ->
        let topology =
          if topology_size > 0 then
            match topology with
            | `Chimera -> Topology.chimera ~m:topology_size ()
            | `King -> Topology.king ~rows:topology_size ~cols:topology_size
            | `Complete -> Topology.complete topology_size
          else Hardware.auto_topology ~seed ~kind:topology q
        in
        { (Hardware.default_params topology) with
          Hardware.chain_strength;
          noise_sigma = noise;
          anneal = { Sa.default with Sa.seed; reads; sweeps; domains } })
  | `Portfolio ->
    let members = Portfolio.default_members ~seed in
    let members =
      (* The packed racer takes the reads knob (it shines at high read
         counts); like every member its internal parallelism stays off. *)
      if packed then
        members @ [ Portfolio.M_sa_packed { Sa.default with Sa.seed; reads; sweeps; domains = 1 } ]
      else members
    in
    Sampler.portfolio ~params:{ Portfolio.members; jobs; budget } ()
  | `Classical -> invalid_arg "build_sampler: classical is not a sampler"
  in
  if decompose then
    Sampler.decomposed
      ~params:{ Qsmt_qubo.Decompose.default with Qsmt_qubo.Decompose.subsize; jobs; seed }
      base
  else base

(* CDCL bit-blasting as an SMT-LIB theory backend: complete on the
   supported fragment, so (unlike the samplers) it may answer `Unsat.
   One incremental session per backend — repeated queries across a
   push/pop script hit the outcome cache, and conjunctions share a
   single assumption-based CDCL instance that keeps its learned
   clauses. *)
let classical_backend () =
  let session = Strsolver.Session.create () in
  let value_of = function
    | Constr.Str s -> Some (Eval.V_str s)
    | Constr.Pos (Some i) -> Some (Eval.V_int i)
    | Constr.Pos None -> None
  in
  let solve_one constr =
    let o = Strsolver.Session.solve session constr in
    match o.Strsolver.result with
    | `Unsat -> `Unsat
    | `Sat when o.Strsolver.satisfied -> begin
      match Option.bind o.Strsolver.value value_of with
      | Some v -> `Value v
      | None -> `Unknown
    end
    | `Sat | `Unknown -> `Unknown
  in
  {
    Interp.backend_name = "classical";
    solve_generate = solve_one;
    solve_joint =
      (fun conjuncts ->
        match Strsolver.Session.solve_joint session conjuncts with
        | Ok (`Sat s, _) -> `Value (Eval.V_str s)
        | Ok (`Unsat, _) -> `Unsat (* exact: a real refutation *)
        | Ok (`Unknown, _) -> `Unknown
        | Error _ ->
          (* not joint-encodable (an Includes conjunct, length mismatch):
             solve each conjunct independently; any refuted conjunct
             refutes the conjunction, and any conjunct's model that
             verifies against all conjuncts is a model of the
             conjunction. Anything else stays unknown. *)
          let outcomes = List.map (Strsolver.Session.solve session) conjuncts in
          if List.exists (fun o -> o.Strsolver.result = `Unsat) outcomes then `Unsat
          else begin
            let candidate_ok v = List.for_all (fun c -> Constr.verify c v) conjuncts in
            let witness =
              List.find_map
                (fun o ->
                  match (o.Strsolver.result, o.Strsolver.value) with
                  | `Sat, Some (Constr.Str _ as v) when o.Strsolver.satisfied && candidate_ok v
                    ->
                    Some v
                  | _ -> None)
                outcomes
            in
            match Option.bind witness value_of with Some v -> `Value v | None -> `Unknown
          end);
  }

(* ------------------------------------------------------------------ *)
(* operation parsing for `gen` and `matrix` *)

let constraint_of_op op args =
  let int s = match int_of_string_opt s with Some n -> Ok n | None -> Error (`Msg (s ^ " is not an integer")) in
  let char s = if String.length s = 1 then Ok s.[0] else Error (`Msg (s ^ " is not a single character")) in
  let ( let* ) = Result.bind in
  match (op, args) with
  | "equals", [ s ] -> Ok (Constr.Equals s)
  | "concat", parts when parts <> [] -> Ok (Constr.Concat parts)
  | "contains", [ len; sub ] ->
    let* length = int len in
    Ok (Constr.Contains { length; substring = sub })
  | "includes", [ haystack; needle ] -> Ok (Constr.Includes { haystack; needle })
  | "indexof", [ len; sub; idx ] ->
    let* length = int len in
    let* index = int idx in
    Ok (Constr.Index_of { length; substring = sub; index })
  | "length", [ chars; target ] ->
    let* num_chars = int chars in
    let* target_length = int target in
    Ok (Constr.Has_length { num_chars; target_length })
  | "replace-all", [ src; f; r ] ->
    let* find = char f in
    let* replace = char r in
    Ok (Constr.Replace_all { source = src; find; replace })
  | "replace", [ src; f; r ] ->
    let* find = char f in
    let* replace = char r in
    Ok (Constr.Replace_first { source = src; find; replace })
  | "reverse", [ s ] -> Ok (Constr.Reverse s)
  | "palindrome", [ len ] ->
    let* length = int len in
    Ok (Constr.Palindrome { length })
  | "regex", [ pattern; len ] ->
    let* length = int len in
    let* pattern =
      match Qsmt_regex.Parser.parse pattern with
      | Ok p -> Ok p
      | Error e -> Error (`Msg ("bad regex: " ^ e))
    in
    Ok (Constr.Regex { pattern; length })
  | _ ->
    Error
      (`Msg
        (Printf.sprintf
           "unknown operation %S or wrong arguments. Operations: equals S | concat S... | \
            contains LEN SUB | includes HAY NEEDLE | indexof LEN SUB IDX | length CHARS TARGET \
            | replace-all SRC C D | replace SRC C D | reverse S | palindrome LEN | regex PAT LEN"
           op))

let op_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"OP" ~doc:"Operation name.")
let op_args = Arg.(value & pos_right 0 string [] & info [] ~docv:"ARGS" ~doc:"Operation arguments.")

(* ------------------------------------------------------------------ *)
(* gen *)

(* TTS row of the --metrics summary, consistent with
   [Metrics.time_to_solution]: p_success is the fraction of reads at or
   below the verified sample's energy (0 when nothing verified, printing
   "n/a"), time_per_read the raw sampling wall time split across
   reads. *)
let gen_tts (outcome, timing) =
  let reads = Sampleset.total_reads outcome.Solver.samples in
  if reads = 0 || timing.Solver.sample_s <= 0. then None
  else begin
    let time_per_read = timing.Solver.sample_s /. float_of_int reads in
    let p_success =
      if outcome.Solver.satisfied then
        Metrics.success_probability outcome.Solver.samples
          ~ground_energy:outcome.Solver.energy ()
      else 0.
    in
    Some (p_success, time_per_read, Metrics.time_to_solution ~time_per_read ~p_success ())
  end

(* One-line summary of a static verdict for the gen/analyze outputs. *)
let absint_summary ppf (a : Absint.analysis) =
  let verdict =
    match a.Absint.verdict with
    | Absint.V_sat _ -> "sat"
    | Absint.V_unsat why -> "unsat (" ^ why ^ ")"
    | Absint.V_undecided -> "undecided"
  in
  Format.fprintf ppf "%s — %d iteration(s), %d fact(s), %d/%d position(s) fixed" verdict
    a.Absint.iterations a.Absint.facts (Absint.num_fixed_positions a) a.Absint.length

let gen_action op args sampler_kind seed reads sweeps domains packed jobs budget topology
    topology_size chain_strength noise decompose subsize show_matrix param_assigns lint_level
    no_absint trace metrics metrics_out =
  let params = params_of_assignments param_assigns in
  match constraint_of_op op args with
  | Error (`Msg m) ->
    prerr_endline ("qsmt: " ^ m);
    2
  | Ok constr -> begin
    match Constr.validate constr with
    | Error m ->
      prerr_endline ("qsmt: invalid constraint: " ^ m);
      2
    | Ok () ->
      Format.printf "constraint: %s@." (Constr.describe constr);
      if sampler_kind = `Classical then begin
        let o = Strsolver.solve constr in
        (match o.Strsolver.result with
        | `Sat ->
          (match o.Strsolver.value with
          | Some v -> Format.printf "result    : %a (%s)@." Constr.pp_value v
                        (if o.Strsolver.satisfied then "verified" else "NOT verified")
          | None -> ());
          Format.printf "cdcl      : %a@." Qsmt_classical.Cdcl.pp_stats o.Strsolver.sat_stats
        | `Unsat -> Format.printf "result    : unsat@."
        | `Unknown -> Format.printf "result    : unknown (budget)@.");
        if o.Strsolver.satisfied || o.Strsolver.result = `Unsat then 0 else 1
      end
      else begin
        let sampler =
          build_sampler sampler_kind ~seed ~reads ~sweeps ~domains ~jobs ~budget ~topology
            ~topology_size ~chain_strength ~noise ~packed ~decompose ~subsize
        in
        let absint = if no_absint then `Off else `On in
        let result =
          with_telemetry ~trace ~metrics ~metrics_out
            ~tts_of:(function Ok r -> gen_tts r | Error _ -> None)
            (fun telemetry ->
              match
                Solver.solve_timed ?params ~sampler ~lint:lint_level ~absint ~telemetry constr
              with
              | exception Lint.Rejected (_, findings) -> Error findings
              | outcome, timing -> begin
                match outcome.Solver.decided with
                | Some a ->
                  (* Statically decided: no QUBO was built, no sampler ran —
                     the qubo/hardware/timing lines would all be
                     placeholders, so print the analysis instead. *)
                  Format.printf "absint    : %a@." absint_summary a;
                  (match a.Absint.verdict with
                  | Absint.V_sat _ ->
                    Format.printf "result    : %a (verified, decided statically)@."
                      Constr.pp_value outcome.Solver.value
                  | Absint.V_unsat _ | Absint.V_undecided ->
                    Format.printf "result    : unsat (proved statically)@.");
                  Ok (outcome, timing)
                | None ->
                  if show_matrix then
                    Format.printf "matrix    :@.%a@."
                      (fun ppf q -> Qubo_print.pp_dense ~max_dim:14 ppf q)
                      outcome.Solver.qubo;
                  Format.printf "qubo      : %a@." Qubo.pp outcome.Solver.qubo;
                  Format.printf "result    : %a (energy %g, %s)@." Constr.pp_value
                    outcome.Solver.value outcome.Solver.energy
                    (if outcome.Solver.satisfied then "verified" else "NOT satisfied");
                  (match outcome.Solver.hardware with
                  | Some stats -> Format.printf "hardware  : %a@." Hardware.pp_stats stats
                  | None -> ());
                  Format.printf
                    "timing    : encode %.1fus anneal %.1fms decode %.1fus verify %.1fus@."
                    (1e6 *. timing.Solver.encode_s) (1e3 *. timing.Solver.sample_s)
                    (1e6 *. timing.Solver.decode_s) (1e6 *. timing.Solver.verify_s);
                  Ok (outcome, timing)
              end)
        in
        match result with
        | Error findings ->
          Format.eprintf "qsmt: lint gate rejected the encoding (%d error(s), %d warning(s)):@."
            (Analyze.count_severity findings Analyze.Error)
            (Analyze.count_severity findings Analyze.Warning);
          List.iter (fun f -> Format.eprintf "  %a@." Analyze.pp_finding f) findings;
          1
        | Ok (outcome, _) -> if outcome.Solver.satisfied then 0 else 1
      end
  end

let gen_cmd =
  let show_matrix =
    Arg.(value & flag & info [ "matrix" ] ~doc:"Also print the (abbreviated) QUBO matrix.")
  in
  let term =
    Term.(
      const gen_action $ op_arg $ op_args $ sampler_arg $ seed_arg $ reads_arg $ sweeps_arg
      $ domains_arg $ packed_arg $ jobs_arg $ budget_arg $ topology_arg $ topology_size_arg
      $ chain_strength_arg $ noise_arg $ decompose_arg $ subsize_arg $ show_matrix $ param_arg
      $ lint_level_arg $ no_absint_arg $ trace_arg $ metrics_arg $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a string (or position) satisfying one operation."
       ~man:
         [
           `S Manpage.s_examples;
           `P "qsmt gen reverse hello";
           `P "qsmt gen palindrome 6 --sampler sqa";
           `P "qsmt gen regex 'a[bc]+' 5 --seed 3 --matrix";
           `P "qsmt gen includes 'hello world' world --sampler classical";
         ])
    term

(* ------------------------------------------------------------------ *)
(* lint *)

module Smt_parser = Qsmt_smtlib.Parser
module Smt_typecheck = Qsmt_smtlib.Typecheck
module Smt_ast = Qsmt_smtlib.Ast
module Smt_compile = Qsmt_smtlib.Compile

(* The six Table 1 constraints — the paper's evaluation set, and the
   regression corpus `qsmt lint --table1` gates in CI. *)
let table1_constraints () =
  let pattern =
    match Qsmt_regex.Parser.parse "a[bc]+" with Ok p -> p | Error _ -> assert false
  in
  [
    Constr.Reverse "hello";
    Constr.Palindrome { length = 6 };
    Constr.Regex { pattern; length = 5 };
    Constr.Concat [ "hello"; " "; "world" ];
    Constr.Index_of { length = 6; substring = "hi"; index = 2 };
    Constr.Includes { haystack = "hello world"; needle = "world" };
  ]

(* Solve units of an SMT-LIB script: the conjunct lists the assertion
   compiler would hand to the annealer, one list per solve.
   Trivial/classically-solved problems compile no QUBO, so there is
   nothing to lint or analyze. *)
let units_of_script source =
  let ( let* ) = Result.bind in
  let* cmds = Smt_parser.parse_script source in
  let* env, asserts =
    List.fold_left
      (fun acc cmd ->
        let* env, asserts = acc in
        match cmd with
        | Smt_ast.Declare_const (name, sort) ->
          let* env = Smt_typecheck.declare env name sort in
          Ok (env, asserts)
        | Smt_ast.Assert t -> Ok (env, t :: asserts)
        | _ -> acc)
      (Ok (Smt_typecheck.empty_env, []))
      cmds
  in
  let* problem = Smt_compile.compile env (List.rev asserts) in
  match problem with
  | Smt_compile.Trivial _ | Smt_compile.Solved _ -> Ok []
  | Smt_compile.Generate { var; constr } | Smt_compile.Locate { var; constr } ->
    Ok [ (var, [ constr ]) ]
  | Smt_compile.Generate_joint { var; conjuncts } -> Ok [ (var, conjuncts) ]

(* The linter inspects each compiled QUBO on its own, so it flattens the
   units; the abstract interpreter keeps them whole — "length 2 /\
   contains ab /\ contains ba" is only refutable jointly. *)
let constraints_of_script source =
  Result.map
    (fun units -> List.concat_map (fun (var, cs) -> List.map (fun c -> (var, c)) cs) units)
    (units_of_script source)

(* Deterministic single-site damage for the mutation-detection tests:
   does the linter notice? `zero-penalty` deletes the first diagonal
   penalty (an unconstrained bit where the oracle expects a forced one);
   `flip-coupler` negates the first coupler (rewards what the encoding
   meant to punish). Iteration is CSR-ascending, so the damaged site is
   stable across runs. *)
let apply_mutation kind q =
  match kind with
  | `None -> q
  | (`Zero_penalty | `Flip_coupler) as kind ->
    let b = Qubo.builder () in
    Qubo.set_offset b (Qubo.offset q);
    let mutated = ref false in
    Qubo.iter_linear q (fun i v ->
        if kind = `Zero_penalty && not !mutated then mutated := true
        else Qubo.set b i i v);
    Qubo.iter_quadratic q (fun i j v ->
        if kind = `Flip_coupler && not !mutated then begin
          mutated := true;
          Qubo.set b i j (-.v)
        end
        else Qubo.set b i j v);
    Qubo.freeze ~num_vars:(Qubo.num_vars q) b

let lint_action op args table1 smt2 workload fail_on json chain topology topology_size
    chain_strength seed max_enum no_soundness mutate param_assigns trace metrics =
  let params = params_of_assignments param_assigns in
  let targets =
    match (op, table1, smt2, workload) with
    | Some op, false, None, 0 -> begin
      match constraint_of_op op args with
      | Error (`Msg m) -> Error m
      | Ok c -> begin
        match Constr.validate c with
        | Error m -> Error ("invalid constraint: " ^ m)
        | Ok () -> Ok [ (Constr.describe c, c) ]
      end
    end
    | None, true, None, 0 ->
      Ok (List.map (fun c -> (Constr.describe c, c)) (table1_constraints ()))
    | None, false, Some path, 0 -> begin
      let source =
        if path = "-" then In_channel.input_all In_channel.stdin
        else In_channel.with_open_text path In_channel.input_all
      in
      match constraints_of_script source with
      | Error m -> Error (path ^ ": " ^ m)
      | Ok cs ->
        Ok (List.map (fun (var, c) -> (Printf.sprintf "%s: %s" var (Constr.describe c), c)) cs)
    end
    | None, false, None, n when n > 0 ->
      Ok
        (List.map
           (fun c -> (Constr.describe c, c))
           (Workload.suite ~seed ~max_length:6 ~count:n ()))
    | None, false, None, 0 ->
      Error "nothing to lint: give an operation, --table1, --smt2 FILE, or --workload N"
    | _ -> Error "choose exactly one of: an operation, --table1, --smt2 FILE, --workload N"
  in
  match targets with
  | Error m ->
    prerr_endline ("qsmt: " ^ m);
    2
  | Ok targets ->
    let config =
      {
        Lint.analyze = { Analyze.default_config with Analyze.max_enum_vars = max_enum };
        soundness = not no_soundness;
        chain =
          (if chain then
             Some (Lint.chain_spec ~size:topology_size ?strength:chain_strength ~seed topology)
           else None);
      }
    in
    let worst = ref None in
    with_telemetry ~trace ~metrics (fun telemetry ->
        List.iter
          (fun (name, constr) ->
            let q, overwrites =
              Qubo.with_overwrite_log (fun () -> Compile.to_qubo ?params constr)
            in
            let q = apply_mutation mutate q in
            let findings = Lint.lint_compiled ~config ~overwrites ~telemetry constr q in
            (match Analyze.max_severity findings with
            | Some s when
                (match !worst with
                | None -> true
                | Some w -> Analyze.severity_rank s > Analyze.severity_rank w) ->
              worst := Some s
            | _ -> ());
            let errors = Analyze.count_severity findings Analyze.Error in
            let warnings = Analyze.count_severity findings Analyze.Warning in
            let infos = Analyze.count_severity findings Analyze.Info in
            if json then
              Format.printf
                {|{"target":"%s","errors":%d,"warnings":%d,"infos":%d,"findings":[%s]}@.|}
                (Lint.json_escape name) errors warnings infos
                (String.concat "," (List.map Lint.finding_to_json findings))
            else begin
              Format.printf "==> %s@." name;
              List.iter (fun f -> Format.printf "  %a@." Analyze.pp_finding f) findings;
              if findings = [] then Format.printf "  clean@."
              else Format.printf "  %d error(s), %d warning(s), %d info(s)@." errors warnings infos
            end)
          targets);
    let worst_rank =
      match !worst with None -> -1 | Some s -> Analyze.severity_rank s
    in
    let threshold =
      match fail_on with
      | `Never -> max_int
      | `Warning -> Analyze.severity_rank Analyze.Warning
      | `Error -> Analyze.severity_rank Analyze.Error
    in
    if worst_rank >= threshold then 1 else 0

let lint_cmd =
  let op =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"OP" ~doc:"Operation name (as in $(b,qsmt gen)).")
  in
  let table1 =
    Arg.(value & flag & info [ "table1" ] ~doc:"Lint the paper's six Table 1 constraints.")
  in
  let smt2 =
    Arg.(
      value
      & opt (some string) None
      & info [ "smt2" ] ~docv:"FILE"
          ~doc:"Lint every annealer constraint an SMT-LIB script compiles to ($(b,-) for stdin).")
  in
  let workload =
    Arg.(
      value & opt int 0
      & info [ "workload" ] ~docv:"N"
          ~doc:"Lint $(docv) seeded random constraints from the workload generator.")
  in
  let fail_on =
    Arg.(
      value
      & opt (enum [ ("error", `Error); ("warning", `Warning); ("never", `Never) ]) `Error
      & info [ "fail-on" ] ~docv:"SEVERITY"
          ~doc:"Exit 1 when any finding reaches $(docv) ($(b,error), $(b,warning), or $(b,never); default $(b,error)).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Machine-readable output: one JSON object per linted constraint, findings inline.")
  in
  let chain =
    Arg.(
      value & flag
      & info [ "chain" ]
          ~doc:
            "Also check hardware-embedding adequacy: embed into $(b,--topology) (auto-sized \
             unless $(b,--topology-size) is given) and judge $(b,--chain-strength) against the \
             recommended default and the max-local-field no-break bound.")
  in
  let max_enum =
    Arg.(
      value & opt int Analyze.default_config.Analyze.max_enum_vars
      & info [ "max-enum" ] ~docv:"N"
          ~doc:
            "Exhaustive-soundness budget: enumerate the reduced residual only when it keeps at \
             most $(docv) free variables (hard cap 24).")
  in
  let no_soundness =
    Arg.(
      value & flag
      & info [ "no-soundness" ] ~doc:"Skip the exhaustive ground-set-vs-oracle check.")
  in
  let mutate =
    Arg.(
      value
      & opt (enum [ ("none", `None); ("zero-penalty", `Zero_penalty); ("flip-coupler", `Flip_coupler) ]) `None
      & info [ "mutate" ] ~docv:"KIND"
          ~doc:
            "Damage the compiled QUBO before linting ($(b,zero-penalty): drop the first diagonal \
             penalty; $(b,flip-coupler): negate the first coupler) — demonstrates and tests that \
             the linter catches the broken encoding.")
  in
  let term =
    Term.(
      const lint_action $ op $ op_args $ table1 $ smt2 $ workload $ fail_on $ json $ chain
      $ topology_arg $ topology_size_arg $ chain_strength_arg $ seed_arg $ max_enum
      $ no_soundness $ mutate $ param_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze QUBO encodings: soundness, penalty gaps, precision, structure."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Compiles the constraint and analyzes the frozen QUBO without ever sampling: \
              exhaustive ground-set soundness against the classical verifier (when the \
              preprocessed residual is small enough to enumerate), penalty-gap and \
              shallow-excitation margins, dynamic-range and non-dyadic precision, dead \
              variables, overwrite collisions, disconnected components, and (with $(b,--chain)) \
              embedding and chain-strength adequacy.";
           `P
             "ERROR findings mean sampling cannot return a trustworthy answer; WARNING means \
              fragile on hardware; INFO is structure worth knowing. Exit status: 0 clean (below \
              $(b,--fail-on)), 1 findings at or above $(b,--fail-on), 2 usage errors.";
           `S Manpage.s_examples;
           `P "qsmt lint reverse hello";
           `P "qsmt lint --table1 --json";
           `P "qsmt lint includes 'hello world' world --mutate flip-coupler";
           `P "qsmt lint palindrome 4 --chain --topology king --chain-strength 0.5";
         ])
    term

(* ------------------------------------------------------------------ *)
(* analyze *)

let analysis_to_json name (a : Absint.analysis) findings =
  let errors = Analyze.count_severity findings Analyze.Error in
  let warnings = Analyze.count_severity findings Analyze.Warning in
  let infos = Analyze.count_severity findings Analyze.Info in
  let verdict, value =
    match a.Absint.verdict with
    | Absint.V_sat v -> ("sat", Format.asprintf "%a" Constr.pp_value v)
    | Absint.V_unsat why -> ("unsat", why)
    | Absint.V_undecided -> ("undecided", "")
  in
  Printf.sprintf
    {|{"target":"%s","verdict":"%s","value":"%s","length":%d,"iterations":%d,"facts":%d,"positions_fixed":%d,"bits_forced":%d,"widened":%b,"errors":%d,"warnings":%d,"infos":%d,"findings":[%s]}|}
    (Lint.json_escape name) verdict (Lint.json_escape value) a.Absint.length
    a.Absint.iterations a.Absint.facts
    (Absint.num_fixed_positions a)
    (List.length (Absint.forced_bits a))
    a.Absint.widened errors warnings infos
    (String.concat "," (List.map Lint.finding_to_json findings))

let analyze_action op args table1 smt2 workload fail_on json max_iters seed trace metrics
    metrics_out =
  let describe_unit cs = String.concat " /\\ " (List.map Constr.describe cs) in
  let targets =
    match (op, table1, smt2, workload) with
    | Some op, false, None, 0 -> begin
      match constraint_of_op op args with
      | Error (`Msg m) -> Error m
      | Ok c -> begin
        match Constr.validate c with
        | Error m -> Error ("invalid constraint: " ^ m)
        | Ok () -> Ok [ (Constr.describe c, [ c ]) ]
      end
    end
    | None, true, None, 0 ->
      Ok (List.map (fun c -> (Constr.describe c, [ c ])) (table1_constraints ()))
    | None, false, Some path, 0 -> begin
      let source =
        if path = "-" then In_channel.input_all In_channel.stdin
        else In_channel.with_open_text path In_channel.input_all
      in
      match units_of_script source with
      | Error m -> Error (path ^ ": " ^ m)
      | Ok units ->
        Ok
          (List.map
             (fun (var, cs) -> (Printf.sprintf "%s: %s" var (describe_unit cs), cs))
             units)
    end
    | None, false, None, n when n > 0 ->
      Ok
        (List.map
           (fun c -> (Constr.describe c, [ c ]))
           (Workload.suite ~seed ~max_length:6 ~count:n ()))
    | None, false, None, 0 ->
      Error "nothing to analyze: give an operation, --table1, --smt2 FILE, or --workload N"
    | _ -> Error "choose exactly one of: an operation, --table1, --smt2 FILE, --workload N"
  in
  match targets with
  | Error m ->
    prerr_endline ("qsmt: " ^ m);
    2
  | Ok targets ->
    let worst = ref None in
    let failed = ref false in
    with_telemetry ~trace ~metrics ~metrics_out (fun telemetry ->
        List.iter
          (fun (name, cs) ->
            match Absint.analyze ~max_iters cs with
            | Error m ->
              failed := true;
              Format.eprintf "qsmt: %s: not analyzable (%s)@." name m
            | Ok a ->
              Absint.emit telemetry a;
              let findings = Absint.findings a in
              (match Analyze.max_severity findings with
              | Some s when
                  (match !worst with
                  | None -> true
                  | Some w -> Analyze.severity_rank s > Analyze.severity_rank w) ->
                worst := Some s
              | _ -> ());
              if json then print_endline (analysis_to_json name a findings)
              else begin
                Format.printf "==> %s@." name;
                Format.printf "  %a@." Absint.pp a;
                List.iter (fun f -> Format.printf "  %a@." Analyze.pp_finding f) findings
              end)
          targets);
    if !failed then 2
    else begin
      let worst_rank =
        match !worst with None -> -1 | Some s -> Analyze.severity_rank s
      in
      let threshold =
        match fail_on with
        | `Never -> max_int
        | `Warning -> Analyze.severity_rank Analyze.Warning
        | `Error -> Analyze.severity_rank Analyze.Error
      in
      if worst_rank >= threshold then 1 else 0
    end

let analyze_cmd =
  let op =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"OP" ~doc:"Operation name (as in $(b,qsmt gen)).")
  in
  let table1 =
    Arg.(value & flag & info [ "table1" ] ~doc:"Analyze the paper's six Table 1 constraints.")
  in
  let smt2 =
    Arg.(
      value
      & opt (some string) None
      & info [ "smt2" ] ~docv:"FILE"
          ~doc:
            "Analyze every solve unit of an SMT-LIB script as one conjunction ($(b,-) for \
             stdin).")
  in
  let workload =
    Arg.(
      value & opt int 0
      & info [ "workload" ] ~docv:"N"
          ~doc:"Analyze $(docv) seeded random constraints from the workload generator.")
  in
  let fail_on =
    Arg.(
      value
      & opt (enum [ ("error", `Error); ("warning", `Warning); ("never", `Never) ]) `Error
      & info [ "fail-on" ] ~docv:"SEVERITY"
          ~doc:
            "Exit 1 when any finding reaches $(docv) ($(b,error), $(b,warning), or $(b,never); \
             default $(b,error)). A static contradiction is an $(b,error) finding.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable output: one JSON object per analyzed conjunction — verdict, \
             fixpoint stats, forced-bit counts, findings inline.")
  in
  let max_iters =
    Arg.(
      value & opt int Absint.default_max_iters
      & info [ "max-iters" ] ~docv:"N"
          ~doc:
            "Widening cap on fixpoint iterations; analyses stopped by the cap keep their (sound) \
             partial domains and report a $(b,absint-widened) finding.")
  in
  let term =
    Term.(
      const analyze_action $ op $ op_args $ table1 $ smt2 $ workload $ fail_on $ json
      $ max_iters $ seed_arg $ trace_arg $ metrics_arg $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Abstract-interpret constraints before encoding: prove, decide, or shrink statically."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the pre-encode abstract interpreter over each target conjunction: \
              per-position character-set domains seeded from literals and operation structure, \
              refined by DFA-based regex reachability and substring-placement feasibility, \
              closed under palindrome congruence, iterated to a fixpoint. No QUBO is built and \
              no sampler runs.";
           `P
             "An empty domain proves the conjunction unsatisfiable ($(b,unsat) verdict, an ERROR \
              finding); all-singleton domains name the unique candidate, which the classical \
              verifier grades ($(b,sat) verdict). Undecided conjunctions report how many codec \
              bits the solver will clamp out of the anneal ($(b,absint-shrink)). Exit status: 0 \
              clean (below $(b,--fail-on)), 1 findings at or above $(b,--fail-on), 2 usage \
              errors.";
           `S Manpage.s_examples;
           `P "qsmt analyze reverse hello";
           `P "qsmt analyze --table1 --json";
           `P "qsmt analyze --smt2 problem.smt2 --fail-on error";
           `P "qsmt analyze regex 'a[bc]+' 5";
         ])
    term

(* ------------------------------------------------------------------ *)
(* matrix *)

let matrix_action op args full =
  match constraint_of_op op args with
  | Error (`Msg m) ->
    prerr_endline ("qsmt: " ^ m);
    2
  | Ok constr -> begin
    match Constr.validate constr with
    | Error m ->
      prerr_endline ("qsmt: invalid constraint: " ^ m);
      2
    | Ok () ->
      let q = Compile.to_qubo constr in
      Format.printf "%s@.%a@.%a@." (Constr.describe constr) Qubo.pp q
        (fun ppf q ->
          if full then Qubo_print.pp_sparse ppf q else Qubo_print.pp_dense ~max_dim:14 ppf q)
        q;
      0
  end

let matrix_cmd =
  let full = Arg.(value & flag & info [ "sparse" ] ~doc:"Print every entry (sparse listing) instead of the dense block.") in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Print the QUBO encoding of one operation (Table 1 style).")
    Term.(const matrix_action $ op_arg $ op_args $ full)

(* ------------------------------------------------------------------ *)
(* run *)

let run_action path sampler_kind seed reads sweeps domains packed jobs budget topology
    topology_size chain_strength noise decompose subsize no_absint trace metrics metrics_out
    progress =
  let source =
    if path = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_text path In_channel.input_all
  in
  let absint = if no_absint then `Off else `On in
  let result =
    with_telemetry ~trace ~metrics ~metrics_out ~progress (fun telemetry ->
        match sampler_kind with
        | `Classical -> Interp.run_string ~backend:(classical_backend ()) ~telemetry source
        | _ ->
          let sampler =
            build_sampler sampler_kind ~seed ~reads ~sweeps ~domains ~jobs ~budget ~topology
              ~topology_size ~chain_strength ~noise ~packed ~decompose ~subsize
          in
          Interp.run_string ~sampler ~absint ~telemetry source)
  in
  match result with
  | Ok lines ->
    List.iter print_endline lines;
    0
  | Error msg ->
    prerr_endline ("qsmt: " ^ msg);
    2

let run_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"SMT-LIB script ($(b,-) for stdin).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute an SMT-LIB script (QF_S generative fragment).")
    Term.(
      const run_action $ path $ sampler_arg $ seed_arg $ reads_arg $ sweeps_arg $ domains_arg
      $ packed_arg $ jobs_arg $ budget_arg $ topology_arg $ topology_size_arg $ chain_strength_arg
      $ noise_arg $ decompose_arg $ subsize_arg $ no_absint_arg $ trace_arg $ metrics_arg
      $ metrics_out_arg $ progress_arg)

(* ------------------------------------------------------------------ *)
(* repl *)

(* Incremental REPL: reads s-expressions from stdin one top-level form
   at a time (so push/pop/check-sat interleave with their output), keeps
   one interpreter state — and therefore one incremental solver session
   with its encode cache, warm starts and learned clauses — across
   commands, and recovers from errors instead of aborting the way
   `qsmt run` does. *)
let repl_action sampler_kind seed reads sweeps domains packed jobs budget topology
    topology_size chain_strength noise decompose subsize no_absint =
  let st =
    match sampler_kind with
    | `Classical -> Interp.create ~backend:(classical_backend ()) ()
    | _ ->
      let sampler =
        build_sampler sampler_kind ~seed ~reads ~sweeps ~domains ~jobs ~budget ~topology
          ~topology_size ~chain_strength ~noise ~packed ~decompose ~subsize
      in
      Interp.create ~sampler ~absint:(if no_absint then `Off else `On) ()
  in
  let stop = ref None in
  let exec_chunk chunk =
    match Parser.parse_script chunk with
    | Error msg -> Printf.printf "(error %S)\n" msg
    | Ok cmds ->
      List.iter
        (fun cmd ->
          if !stop = None then begin
            match Interp.exec st cmd with
            | Ok lines ->
              List.iter print_endline lines;
              if cmd = Ast.Exit then stop := Some 0
            | Error msg -> Printf.printf "(error %S)\n" msg
          end)
        cmds
  in
  (* Quote-aware paren balancing: a chunk is complete when the paren
     depth returns to 0. SMT-LIB strings escape quotes by doubling, so a
     bare toggle on '"' tracks in-string correctly for counting; ';'
     comments run to end of line. The chunk text itself goes to the real
     parser — this scanner only finds the boundaries. *)
  let buf = Buffer.create 256 in
  let depth = ref 0 and in_string = ref false and in_comment = ref false in
  let feed c =
    let keep () = if !depth > 0 || Buffer.length buf > 0 then Buffer.add_char buf c in
    if !in_comment then begin
      if c = '\n' then in_comment := false;
      keep ()
    end
    else if !in_string then begin
      if c = '"' then in_string := false;
      Buffer.add_char buf c
    end
    else begin
      match c with
      | ';' ->
        in_comment := true;
        keep ()
      | '"' ->
        in_string := true;
        Buffer.add_char buf c
      | '(' ->
        incr depth;
        Buffer.add_char buf c
      | ')' ->
        decr depth;
        Buffer.add_char buf c;
        if !depth <= 0 then begin
          let chunk = Buffer.contents buf in
          Buffer.clear buf;
          depth := 0;
          exec_chunk chunk;
          flush stdout
        end
      | ' ' | '\t' | '\r' | '\n' -> keep ()
      | _ -> Buffer.add_char buf c
    end
  in
  let rec pump () =
    if !stop = None then begin
      match In_channel.input_line In_channel.stdin with
      | None -> ()
      | Some line ->
        String.iter feed line;
        feed '\n';
        pump ()
    end
  in
  pump ();
  match !stop with
  | Some code -> code
  | None ->
    if !depth = 0 && (not !in_string) && String.trim (Buffer.contents buf) = "" then 0
    else begin
      prerr_endline "qsmt: unbalanced input at end of stream";
      2
    end

let repl_cmd =
  Cmd.v
    (Cmd.info "repl"
       ~doc:
         "Interactive SMT-LIB session on stdin. One incremental solver session persists across \
          commands, so push/pop re-checks reuse cached encodings, warm-start the anneal from the \
          previous model (or retain learned clauses with $(b,--sampler classical)); errors are \
          reported as $(b,(error ...)) and the session continues."
       ~man:
         [
           `S Manpage.s_examples;
           `P "qsmt repl < session.smt2";
           `P
             "printf '(declare-const x String)(assert (str.palindrome x))(assert (= (str.len x) \
              4))(check-sat)(get-model)(exit)' | qsmt repl";
         ])
    Term.(
      const repl_action $ sampler_arg $ seed_arg $ reads_arg $ sweeps_arg $ domains_arg
      $ packed_arg $ jobs_arg $ budget_arg $ topology_arg $ topology_size_arg $ chain_strength_arg
      $ noise_arg $ decompose_arg $ subsize_arg $ no_absint_arg)

(* ------------------------------------------------------------------ *)
(* export *)

let export_action op args format =
  match constraint_of_op op args with
  | Error (`Msg m) ->
    prerr_endline ("qsmt: " ^ m);
    2
  | Ok constr -> begin
    match format with
    | `Qubo -> begin
      match Constr.validate constr with
      | Error m ->
        prerr_endline ("qsmt: invalid constraint: " ^ m);
        2
      | Ok () ->
        print_string (Qubo_io.to_string (Compile.to_qubo constr));
        0
    end
    | `Dimacs ->
      print_string (Dimacs.to_string (Bitblast.encode constr));
      0
    | `Smt2 -> begin
      match Smtgen.script constr with
      | Ok text ->
        print_string text;
        0
      | Error m ->
        prerr_endline ("qsmt: " ^ m);
        2
    end
  end

let export_cmd =
  let format =
    Arg.(
      value
      & opt (enum [ ("qubo", `Qubo); ("dimacs", `Dimacs); ("smt2", `Smt2) ]) `Qubo
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,qubo) (COO text of the annealing encoding), $(b,dimacs) (CNF of \
             the classical bit-blasting), $(b,smt2) (a runnable SMT-LIB script).")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export one operation's encoding (QUBO / DIMACS CNF / SMT-LIB script) to stdout."
       ~man:
         [
           `S Manpage.s_examples;
           `P "qsmt export palindrome 4 --format qubo";
           `P "qsmt export contains 4 cat --format dimacs | minisat /dev/stdin";
           `P "qsmt export regex 'a[bc]+' 5 --format smt2 | z3 -in";
         ])
    Term.(const export_action $ op_arg $ op_args $ format)

(* ------------------------------------------------------------------ *)
(* trace *)

let trace_action path chrome =
  match Telemetry.validate_jsonl_file path with
  | Ok n -> begin
    Format.printf "%s: %d events, well-formed JSONL, monotone timestamps, balanced spans@." path n;
    match chrome with
    | None -> 0
    | Some dst -> begin
      match Telemetry.export_chrome_file ~src:path ~dst with
      | Ok events ->
        Format.printf "%s: %d trace events (Chrome trace-event format)@." dst events;
        0
      | Error msg ->
        prerr_endline ("qsmt: chrome export failed: " ^ msg);
        2
    end
  end
  | Error msg ->
    prerr_endline ("qsmt: invalid trace: " ^ msg);
    2
  | exception Sys_error msg ->
    prerr_endline ("qsmt: " ^ msg);
    2

let trace_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace written by $(b,--trace).")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"OUT"
          ~doc:
            "After validating, also convert the trace to Chrome trace-event JSON at $(docv) — \
             loadable in Perfetto (ui.perfetto.dev) or chrome://tracing; spans become nested \
             slices, overlapping spans (portfolio members, decomposer shards) get their own \
             lanes.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Validate a telemetry trace: every line a JSON object with an event name and timestamp, \
          timestamps non-decreasing, span begin/end stream balanced and properly nested. Exits 0 \
          and prints the event count on success."
       ~man:
         [
           `S Manpage.s_examples;
           `P "qsmt gen reverse hello --trace t.jsonl && qsmt trace t.jsonl";
           `P "qsmt trace t.jsonl --chrome t.chrome.json";
         ])
    Term.(const trace_action $ path $ chrome)

(* ------------------------------------------------------------------ *)
(* metrics *)

let metrics_action path =
  match Telemetry.snapshot_of_jsonl_file path with
  | Ok snap ->
    print_string (Telemetry.expose_text snap);
    0
  | Error msg ->
    prerr_endline ("qsmt: invalid trace: " ^ msg);
    2
  | exception Sys_error msg ->
    prerr_endline ("qsmt: " ^ msg);
    2

let metrics_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace written by $(b,--trace).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Replay a JSONL telemetry trace and print its metrics (counters, gauges, histograms \
          with p50/p90/p99 quantiles, span totals) in Prometheus text exposition format — the \
          same dump $(b,--metrics-out) writes live."
       ~man:
         [
           `S Manpage.s_examples;
           `P "qsmt gen reverse hello --trace t.jsonl && qsmt metrics t.jsonl";
         ])
    Term.(const metrics_action $ path)

(* ------------------------------------------------------------------ *)
(* samplers *)

let samplers_action () =
  print_endline "sa         simulated annealing (D-Wave neal equivalent; the paper's solver)";
  print_endline
    "           (--packed runs reads 64-to-a-word through the multi-spin kernel)";
  print_endline "sqa        simulated quantum annealing (path-integral Monte Carlo)";
  print_endline "tabu       tabu search";
  print_endline "greedy     steepest-descent with restarts";
  print_endline "exact      exhaustive ground-state search (<= 30 variables)";
  print_endline
    "hardware   QPU-workflow emulation: minor embedding, chain penalties, control noise";
  print_endline
    "portfolio  race sa/sqa/pt/tabu/greedy concurrently; first verified read wins (--packed adds \
     an sa_packed member)";
  print_endline "classical  CDCL SAT solver over bit-blasted constraints (complete)";
  print_endline
    "           (--decompose wraps any sampler but classical: qbsolv-style sharding for \
     problems past one embedding)";
  0

let samplers_cmd =
  Cmd.v (Cmd.info "samplers" ~doc:"List available solver backends.") Term.(const samplers_action $ const ())

let main_cmd =
  Cmd.group
    (Cmd.info "qsmt" ~version:"1.0.0"
       ~doc:"Quantum-annealing SMT solver for the theory of strings (QUBO formulations).")
    [
      run_cmd;
      repl_cmd;
      gen_cmd;
      lint_cmd;
      analyze_cmd;
      matrix_cmd;
      export_cmd;
      trace_cmd;
      metrics_cmd;
      samplers_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
